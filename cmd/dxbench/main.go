// Command dxbench regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	dxbench                  # run every experiment at paper scale
//	dxbench -experiment F6   # run one experiment
//	dxbench -list            # list experiment IDs and titles
//	dxbench -quick           # reduced sweep sizes
//	dxbench -n 65536         # bulk operation size
//	dxbench -seed 7          # RNG seed
//	dxbench -parallel 8      # worker count (default GOMAXPROCS)
//	dxbench -progress        # per-point progress on stderr
//	dxbench -timing          # per-experiment timing + run summary
//	dxbench -events run.json # JSON-lines event log
//
// Experiments fan out over a worker pool; output is byte-identical for
// every -parallel value, because results are assembled in sweep order and
// all shared random draws happen before the fan-out. A content-keyed cache
// (disable with -nocache) executes each distinct simulation once per run,
// even when several sweeps share a baseline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dxbsp/internal/experiments"
	"dxbsp/internal/runner"
	"dxbsp/internal/tablefmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and arguments, for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dxbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID    = fs.String("experiment", "", "experiment ID to run (default: all)")
		list     = fs.Bool("list", false, "list experiments and exit")
		quick    = fs.Bool("quick", false, "use reduced sweep sizes")
		n        = fs.Int("n", 0, "bulk operation size (default 65536, or 4096 with -quick)")
		seed     = fs.Uint64("seed", 0, "random seed (default: built-in)")
		format   = fs.String("format", "text", "output format: text, csv, or plot (ASCII chart)")
		logx     = fs.Bool("logx", false, "log-scale x axis for -format plot")
		logy     = fs.Bool("logy", false, "log-scale y axis for -format plot")
		parallel = fs.Int("parallel", 0, "worker goroutines per experiment (default: GOMAXPROCS)")
		progress = fs.Bool("progress", false, "report per-point progress on stderr")
		timing   = fs.Bool("timing", false, "append per-experiment timing lines and a run summary")
		events   = fs.String("events", "", "write a JSON-lines event log to this file")
		nocache  = fs.Bool("nocache", false, "disable the memoized simulation cache")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0: no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "csv" && *format != "plot" {
		fmt.Fprintf(stderr, "dxbench: unknown format %q\n", *format)
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	todo := experiments.All()
	if *expID != "" {
		e, ok := experiments.Lookup(*expID)
		if !ok {
			fmt.Fprintf(stderr, "dxbench: unknown experiment %q (use -list)\n", *expID)
			return 2
		}
		todo = []experiments.Experiment{e}
	}

	r := &runner.Runner{Parallel: *parallel}
	if !*nocache {
		r.Cache = runner.NewCache()
	}
	if *progress {
		r.Progress = stderr
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return 2
		}
		defer f.Close()
		r.Events = runner.NewEventLog(f)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	results := make([]runner.Result, 0, len(todo))
	for i, e := range todo {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		res, err := r.RunExperiment(ctx, e, cfg)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(stderr, "dxbench: timeout after %v: %v\n", *timeout, err)
			} else {
				fmt.Fprintf(stderr, "dxbench: %v\n", err)
			}
			return 1
		}
		results = append(results, res)
		renderResult(stdout, stderr, res.Output, e.ID, *format, *logx, *logy)
		if *timing {
			// The timing footer is a comment in CSV so the output stays
			// machine-parseable; text and plot get the bare line.
			prefix := ""
			if *format == "csv" {
				prefix = "# "
			}
			fmt.Fprintf(stdout, "%s[%s in %v]\n", prefix, e.ID, res.Stats.Wall.Round(time.Millisecond))
		}
	}

	summary := runner.Event{Type: "run_done", Points: totalPoints(results)}
	if r.Cache != nil {
		cs := r.Cache.Stats()
		summary.CacheHits, summary.CacheMisses, summary.CacheBypassed = cs.Hits, cs.Misses, cs.Bypassed
	}
	r.Events.Emit(summary)
	if *timing {
		printSummary(stderr, r, results)
	}
	return 0
}

// renderResult writes one experiment result in the requested format.
func renderResult(stdout, stderr io.Writer, out experiments.Renderable, id, format string, logx, logy bool) {
	switch format {
	case "csv":
		if c, ok := out.(tablefmt.CSVRenderer); ok {
			c.RenderCSV(stdout)
			return
		}
	case "plot":
		opt := tablefmt.PlotOptions{LogX: logx, LogY: logy}
		if tbl, ok := out.(*tablefmt.Table); ok && tablefmt.PlotTable(stdout, tbl, nil, opt) {
			return
		}
		if ser, ok := out.(*tablefmt.Series); ok {
			ser.RenderPlot(stdout, opt)
			return
		}
		fmt.Fprintf(stderr, "dxbench: %s is not plottable; falling back to text\n", id)
	}
	out.Render(stdout)
}

// printSummary reports the run's execution statistics on stderr: per-
// experiment wall time and pool utilization, then cache effectiveness.
func printSummary(w io.Writer, r *runner.Runner, results []runner.Result) {
	fmt.Fprintln(w, "run summary:")
	var wall time.Duration
	for _, res := range results {
		wall += res.Stats.Wall
		fmt.Fprintf(w, "  %-4s %3d point(s) on %d worker(s) in %8v  (util %3.0f%%)\n",
			res.ID, res.Stats.Points, res.Stats.Workers,
			res.Stats.Wall.Round(time.Millisecond), 100*res.Stats.Utilization())
	}
	fmt.Fprintf(w, "  total: %d experiment(s), %d point(s) in %v\n",
		len(results), totalPoints(results), wall.Round(time.Millisecond))
	if r.Cache != nil {
		cs := r.Cache.Stats()
		fmt.Fprintf(w, "  cache: %d hit(s), %d miss(es), %d bypassed (hit rate %.1f%%)\n",
			cs.Hits, cs.Misses, cs.Bypassed, 100*cs.HitRate())
	}
}

func totalPoints(rs []runner.Result) int {
	n := 0
	for _, r := range rs {
		n += r.Stats.Points
	}
	return n
}
