// Command dxbench regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	dxbench                  # run every experiment at paper scale
//	dxbench -experiment F6   # run one experiment
//	dxbench -list            # list experiment IDs and titles
//	dxbench -quick           # reduced sweep sizes
//	dxbench -n 65536         # bulk operation size
//	dxbench -seed 7          # RNG seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dxbsp/internal/experiments"
	"dxbsp/internal/tablefmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and arguments, for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dxbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID  = fs.String("experiment", "", "experiment ID to run (default: all)")
		list   = fs.Bool("list", false, "list experiments and exit")
		quick  = fs.Bool("quick", false, "use reduced sweep sizes")
		n      = fs.Int("n", 0, "bulk operation size (default 65536, or 4096 with -quick)")
		seed   = fs.Uint64("seed", 0, "random seed (default: built-in)")
		format = fs.String("format", "text", "output format: text, csv, or plot (ASCII chart)")
		logx   = fs.Bool("logx", false, "log-scale x axis for -format plot")
		logy   = fs.Bool("logy", false, "log-scale y axis for -format plot")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "csv" && *format != "plot" {
		fmt.Fprintf(stderr, "dxbench: unknown format %q\n", *format)
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	todo := experiments.All()
	if *expID != "" {
		e, ok := experiments.Lookup(*expID)
		if !ok {
			fmt.Fprintf(stderr, "dxbench: unknown experiment %q (use -list)\n", *expID)
			return 2
		}
		todo = []experiments.Experiment{e}
	}

	for i, e := range todo {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		start := time.Now()
		r := e.Run(cfg)
		switch *format {
		case "csv":
			if c, ok := r.(csvRenderer); ok {
				c.RenderCSV(stdout)
			} else {
				r.Render(stdout)
			}
			continue
		case "plot":
			opt := tablefmt.PlotOptions{LogX: *logx, LogY: *logy}
			if tbl, ok := r.(*tablefmt.Table); ok && tablefmt.PlotTable(stdout, tbl, nil, opt) {
				continue
			}
			if ser, ok := r.(*tablefmt.Series); ok {
				ser.RenderPlot(stdout, opt)
				continue
			}
			fmt.Fprintf(stderr, "dxbench: %s is not plottable; falling back to text\n", e.ID)
		}
		r.Render(stdout)
		fmt.Fprintf(stdout, "[%s in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// csvRenderer is satisfied by tablefmt.Table and tablefmt.Series.
type csvRenderer interface {
	RenderCSV(w io.Writer)
}
