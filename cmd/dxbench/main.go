// Command dxbench regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	dxbench                  # run every experiment at paper scale
//	dxbench -experiment F6   # run one experiment
//	dxbench -discipline dram # run one bank discipline's experiment family
//	dxbench -list            # list experiment IDs and titles
//	dxbench -quick           # reduced sweep sizes
//	dxbench -n 65536         # bulk operation size
//	dxbench -seed 7          # RNG seed
//	dxbench -parallel 8      # worker count (default GOMAXPROCS)
//	dxbench -batch 16        # lockstep-batch up to 16 concurrent sims
//	dxbench -progress        # per-point progress on stderr
//	dxbench -timing          # per-experiment timing + run summary
//	dxbench -events run.json # JSON-lines event log
//	dxbench -retries 3       # per-point retry budget for transient failures
//	dxbench -point-timeout 30s  # deadline per point attempt
//	dxbench -chaos error=0.1 # deterministic fault injection (chaos testing)
//	dxbench -checkpoint DIR  # journal results for crash-safe resume
//	dxbench -checkpoint DIR -resume  # resume from a prior journal
//	dxbench -checkpoint DIR -shard 1/4   # static shard: every 4th point
//	dxbench -merge DIR               # merge shard/worker journals
//	dxbench -checkpoint DIR -coordinate  # supervise a distributed sweep
//	dxbench -checkpoint DIR -worker -worker-id a  # claim and run ranges
//	dxbench -surrogate auto  # route large eligible points to the closed form
//	dxbench -surrogate auto -experiment F14  # huge grid, interactive
//	dxbench -metrics         # append bank heatmap + metric series report
//	dxbench -metrics-out m.json      # export metrics (JSON; .om/.txt: OpenMetrics)
//	dxbench -cpuprofile cpu.pprof    # CPU profile of the run (go tool pprof)
//	dxbench -memprofile mem.pprof    # heap profile written at exit
//	dxbench -trace trace.out         # execution trace (go tool trace)
//
// Experiments fan out over a worker pool; output is byte-identical for
// every -parallel value, because results are assembled in sweep order and
// all shared random draws happen before the fan-out. A content-keyed cache
// (disable with -nocache) executes each distinct simulation once per run,
// even when several sweeps share a baseline. The same contract covers
// -metrics and -metrics-out: the exported series are a pure function of
// the set of distinct simulations, so they too are byte-identical across
// worker counts, cache settings, and surviving transient -chaos faults.
//
// The run is resilient: a point that panics or keeps failing is rendered
// as a footnoted FAILED cell and the suite continues. Exit codes: 0 means
// every point succeeded, 1 a hard failure (bad usage, run cancelled or
// timed out, I/O error), 2 a run that completed degraded — output was
// produced but at least one point failed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"dxbsp/internal/experiments"
	"dxbsp/internal/faults"
	"dxbsp/internal/runner"
	"dxbsp/internal/sim"
	"dxbsp/internal/sweep"
	"dxbsp/internal/tablefmt"
)

// Exit codes of the dxbench contract.
const (
	exitOK       = 0
	exitHard     = 1
	exitDegraded = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and arguments, for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dxbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID     = fs.String("experiment", "", "experiment ID to run (default: all)")
		discName  = fs.String("discipline", "", "run the experiment family for one bank discipline (fifo, dram, regulated, gpu)")
		list      = fs.Bool("list", false, "list experiments and exit")
		quick     = fs.Bool("quick", false, "use reduced sweep sizes")
		n         = fs.Int("n", 0, "bulk operation size (default 65536, or 4096 with -quick)")
		seed      = fs.Uint64("seed", 0, "random seed (default: built-in)")
		format    = fs.String("format", "text", "output format: text, csv, or plot (ASCII chart)")
		logx      = fs.Bool("logx", false, "log-scale x axis for -format plot")
		logy      = fs.Bool("logy", false, "log-scale y axis for -format plot")
		parallel  = fs.Int("parallel", 0, "worker goroutines per experiment (default: GOMAXPROCS)")
		progress  = fs.Bool("progress", false, "report per-point progress on stderr")
		timing    = fs.Bool("timing", false, "append per-experiment timing lines and a run summary")
		events    = fs.String("events", "", "write a JSON-lines event log to this file")
		nocache   = fs.Bool("nocache", false, "disable the memoized simulation cache")
		batchK    = fs.Int("batch", 0, "group up to K concurrent simulations into one lockstep batch (0 or 1: off)")
		batchWait = fs.Duration("batch-wait", 0, "how long a partial batch group waits for more lanes before flushing (0: 500µs default; needs -batch)")
		timeout   = fs.Duration("timeout", 0, "abort the run after this duration (0: no limit)")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		traceFile  = fs.String("trace", "", "write a runtime execution trace to this file")

		retries    = fs.Int("retries", 2, "retries per point for transient failures")
		pointLimit = fs.Duration("point-timeout", 0, "deadline per point attempt (0: no limit)")
		chaos      = fs.String("chaos", "", "inject deterministic faults: a rate (\"0.1\") or k=v pairs (panic/error/delay/cancel/corrupt/seed/maxdelay/repeat)")
		checkpoint = fs.String("checkpoint", "", "journal completed simulations to this directory")
		resume     = fs.Bool("resume", false, "reuse results from an existing -checkpoint journal")

		shardSpec  = fs.String("shard", "", "run one static shard i/n of every experiment's points, journaling to a per-shard file (requires -checkpoint)")
		mergeDir   = fs.String("merge", "", "merge the shard and worker journals in this directory into journal.jsonl, then exit")
		coordinate = fs.Bool("coordinate", false, "coordinate a distributed sweep over the -checkpoint directory, then render the merged output")
		workerMode = fs.Bool("worker", false, "join a distributed sweep over the -checkpoint directory as a worker")
		workerID   = fs.String("worker-id", "", "worker name for leases and journal files (default: derived from the process id)")
		leaseTTL   = fs.Duration("lease-ttl", 10*time.Second, "lease time-to-live for distributed sweep ranges")
		chunk      = fs.Int("chunk", 0, "points per manifest range for -coordinate (default 4)")

		showMetrics = fs.Bool("metrics", false, "append an observability report: bank heatmap, metric series, cycle summary")
		metricsOut  = fs.String("metrics-out", "", "export metric series to this file (.json: JSON, otherwise OpenMetrics text)")

		surrMode = fs.String("surrogate", "never",
			"route eligible points to the closed-form surrogate: never, auto (above -surrogate-threshold), or always")
		surrThreshold = fs.Int("surrogate-threshold", 0,
			fmt.Sprintf("request count at which -surrogate auto routes a point (default %d)", runner.DefaultSurrogateThreshold))
	)
	if err := fs.Parse(args); err != nil {
		return exitHard
	}
	if *format != "text" && *format != "csv" && *format != "plot" {
		fmt.Fprintf(stderr, "dxbench: unknown format %q\n", *format)
		return exitHard
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(stderr, "dxbench: -resume requires -checkpoint")
		return exitHard
	}
	if *checkpoint != "" && *nocache {
		fmt.Fprintln(stderr, "dxbench: -checkpoint requires the cache; drop -nocache")
		return exitHard
	}
	sweepModes := 0
	for _, on := range []bool{*shardSpec != "", *mergeDir != "", *coordinate, *workerMode} {
		if on {
			sweepModes++
		}
	}
	if sweepModes > 1 {
		fmt.Fprintln(stderr, "dxbench: -shard, -merge, -coordinate and -worker are mutually exclusive")
		return exitHard
	}
	var shard sweep.Shard
	if *shardSpec != "" {
		var err error
		if shard, err = sweep.ParseShard(*shardSpec); err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
	}
	if (*shardSpec != "" || *coordinate || *workerMode) && *checkpoint == "" {
		fmt.Fprintln(stderr, "dxbench: -shard, -coordinate and -worker require -checkpoint")
		return exitHard
	}
	if (*coordinate || *workerMode) && *resume {
		fmt.Fprintln(stderr, "dxbench: -resume does not apply to -coordinate or -worker; workers resume their own journals automatically")
		return exitHard
	}
	if sweepModes > 0 && (*showMetrics || *metricsOut != "") {
		fmt.Fprintln(stderr, "dxbench: -metrics is not available in sweep modes; render metrics afterwards with -checkpoint DIR -resume -metrics")
		return exitHard
	}

	// Profiling hooks: these observe the real experiment mix (runner fan-
	// out, cache, simulator), which microbenches cannot. All three finish
	// via defers, so every return path below yields loadable files.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		defer func() {
			runtime.GC() // materialize the retained heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "dxbench: writing heap profile: %v\n", err)
			}
			f.Close()
		}()
	}

	surrogateMode, err := runner.ParseSurrogateMode(*surrMode)
	if err != nil {
		fmt.Fprintf(stderr, "dxbench: %v\n", err)
		return exitHard
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Huge() {
			fmt.Fprintf(stdout, "%-4s %s (huge: run with -surrogate auto)\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	todo := experiments.All()
	if *expID != "" && *discName != "" {
		fmt.Fprintln(stderr, "dxbench: -experiment and -discipline are mutually exclusive")
		return exitHard
	}
	if *expID != "" {
		e, ok := experiments.Lookup(*expID)
		if !ok {
			fmt.Fprintf(stderr, "dxbench: unknown experiment %q (use -list)\n", *expID)
			return exitHard
		}
		todo = []experiments.Experiment{e}
	}
	if *discName != "" {
		d, err := sim.ParseDiscipline(*discName)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		todo = experiments.ForDiscipline(d)
	}

	r := &runner.Runner{
		Parallel: *parallel,
		Retry:    runner.RetryPolicy{MaxAttempts: *retries + 1, Seed: cfg.Seed},
		// The suite keeps going when a point exhausts its budget: the cell
		// is footnoted and the run exits with code 2.
		Degraded:     true,
		PointTimeout: *pointLimit,
		Surrogate:    runner.SurrogateRouting{Mode: surrogateMode, Threshold: *surrThreshold},
	}
	if !*nocache {
		r.Cache = runner.NewCache()
	}
	var obs *runner.Observer
	if *showMetrics || *metricsOut != "" {
		obs = runner.NewObserver()
		r.Metrics = obs
	}
	if *progress {
		r.Progress = stderr
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		defer f.Close()
		r.Events = runner.NewEventLog(f)
	}

	// Compose the downstream simulation chain bottom-up: cache → faults →
	// batcher → engine. The batcher sits below the cache so journaled and
	// memoized points never re-batch (a -resume restores them without
	// re-execution), and below the fault injector so chaos decisions stay
	// per-lane — a faulted point never reaches the shared lockstep pass.
	// Every layer is byte-transparent, so output is identical for any -batch
	// K, worker count, and chaos/resume combination.
	var next experiments.SimRunner
	if *batchK > 1 {
		bt := runner.NewBatcher(*batchK)
		bt.Window = *batchWait
		if obs != nil {
			bt.Observe = obs.ObserveBatchLane
		}
		next = bt
	}
	var injector *faults.Injector
	if *chaos != "" {
		spec, err := faults.ParseSpec(*chaos)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		injector = faults.New(spec, next, r.Events)
		next = injector
	}
	if next != nil {
		if r.Cache != nil {
			r.Cache.Next = next
		} else {
			cfg.Sim = next
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *mergeDir != "" {
		return runMergeMode(*mergeDir, stdout, stderr)
	}
	if *shardSpec != "" || *coordinate || *workerMode {
		id := *workerID
		if id == "" {
			id = fmt.Sprintf("w%d", os.Getpid())
		}
		env := &sweepEnv{cfg: cfg, todo: todo, r: r, injector: injector,
			dir: *checkpoint, resume: *resume, leaseTTL: *leaseTTL, chunk: *chunk,
			workerID: id, format: *format, logx: *logx, logy: *logy,
			timing: *timing, stdout: stdout, stderr: stderr}
		switch {
		case *shardSpec != "":
			return runShardMode(ctx, env, shard)
		case *coordinate:
			return runCoordinatorMode(ctx, env)
		default:
			return runWorkerMode(ctx, env)
		}
	}

	if *checkpoint != "" {
		journal, err := runner.OpenJournal(*checkpoint, *resume, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		defer journal.Close()
		r.Cache.Journal = journal
		if injector != nil {
			journal.Corrupt = injector.CorruptRecord
		}
		if *resume {
			js := journal.Stats()
			r.Events.Emit(runner.Event{Type: "checkpoint_loaded",
				CheckpointEntries: js.Loaded, CheckpointSkipped: js.Skipped})
		}
	}

	results := make([]runner.Result, 0, len(todo))
	for i, e := range todo {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		res, err := r.RunExperiment(ctx, e, cfg)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(stderr, "dxbench: timeout after %v: %v\n", *timeout, err)
			} else {
				fmt.Fprintf(stderr, "dxbench: %v\n", err)
			}
			return exitHard
		}
		results = append(results, res)
		renderResult(stdout, stderr, res.Output, e.ID, *format, *logx, *logy)
		if *timing {
			// The timing footer is a comment in CSV so the output stays
			// machine-parseable; text and plot get the bare line.
			prefix := ""
			if *format == "csv" {
				prefix = "# "
			}
			fmt.Fprintf(stdout, "%s[%s in %v]\n", prefix, e.ID, res.Stats.Wall.Round(time.Millisecond))
		}
	}

	summary := runner.Event{Type: "run_done", Points: totalPoints(results), Failed: totalFailed(results)}
	if r.Cache != nil {
		cs := r.Cache.Stats()
		summary.CacheHits, summary.CacheMisses, summary.CacheBypassed = cs.Hits, cs.Misses, cs.Bypassed
		if obs != nil {
			obs.ObserveCache(cs)
		}
		if r.Cache.Journal != nil {
			js := r.Cache.Journal.Stats()
			summary.CheckpointEntries, summary.CheckpointSkipped = js.Loaded, js.Skipped
			summary.CheckpointRestored, summary.CheckpointAppended = js.Restored, js.Appended
			if obs != nil {
				obs.ObserveJournal(js)
			}
		}
	}
	r.Events.Emit(summary)
	if *showMetrics {
		fmt.Fprintln(stdout)
		if err := obs.WriteReport(stdout); err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(stderr, "dxbench: %v\n", err)
			return exitHard
		}
		werr := obs.ExportFile(f, *metricsOut)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "dxbench: writing %s: %v\n", *metricsOut, werr)
			return exitHard
		}
	}
	if *timing {
		printSummary(stderr, r, results)
		if obs != nil {
			obs.WritePointLatency(stderr)
		}
	}
	if injector != nil && *timing {
		fmt.Fprintf(stderr, "  faults injected: %s\n", injector.Stats())
	}
	if failed := totalFailed(results); failed > 0 {
		fmt.Fprintf(stderr, "dxbench: completed degraded: %d point(s) failed (see footnotes)\n", failed)
		return exitDegraded
	}
	return exitOK
}

// renderResult writes one experiment result in the requested format.
func renderResult(stdout, stderr io.Writer, out experiments.Renderable, id, format string, logx, logy bool) {
	switch format {
	case "csv":
		if c, ok := out.(tablefmt.CSVRenderer); ok {
			c.RenderCSV(stdout)
			return
		}
	case "plot":
		opt := tablefmt.PlotOptions{LogX: logx, LogY: logy}
		if tbl, ok := out.(*tablefmt.Table); ok && tablefmt.PlotTable(stdout, tbl, nil, opt) {
			return
		}
		if ser, ok := out.(*tablefmt.Series); ok {
			ser.RenderPlot(stdout, opt)
			return
		}
		fmt.Fprintf(stderr, "dxbench: %s is not plottable; falling back to text\n", id)
	}
	out.Render(stdout)
}

// printSummary reports the run's execution statistics on stderr: per-
// experiment wall time and pool utilization, then cache, retry and
// checkpoint effectiveness.
func printSummary(w io.Writer, r *runner.Runner, results []runner.Result) {
	fmt.Fprintln(w, "run summary:")
	var wall time.Duration
	for _, res := range results {
		wall += res.Stats.Wall
		status := ""
		if res.Stats.Failed > 0 {
			status = fmt.Sprintf("  %d FAILED", res.Stats.Failed)
		}
		fmt.Fprintf(w, "  %-4s %3d point(s) on %d worker(s) in %8v  (util %3.0f%%)%s\n",
			res.ID, res.Stats.Points, res.Stats.Workers,
			res.Stats.Wall.Round(time.Millisecond), 100*res.Stats.Utilization(), status)
	}
	fmt.Fprintf(w, "  total: %d experiment(s), %d point(s) in %v\n",
		len(results), totalPoints(results), wall.Round(time.Millisecond))
	if retries, failed := totalRetries(results), totalFailed(results); retries > 0 || failed > 0 {
		fmt.Fprintf(w, "  resilience: %d retry(ies), %d point(s) failed\n", retries, failed)
	}
	if r.Cache != nil {
		cs := r.Cache.Stats()
		fmt.Fprintf(w, "  cache: %d hit(s), %d miss(es), %d bypassed (hit rate %.1f%%)\n",
			cs.Hits, cs.Misses, cs.Bypassed, 100*cs.HitRate())
		if r.Cache.Journal != nil {
			js := r.Cache.Journal.Stats()
			fmt.Fprintf(w, "  checkpoint: %d entry(ies), %d restored, %d appended, %d corrupt skipped\n",
				js.Loaded, js.Restored, js.Appended, js.Skipped)
		}
	}
}

func totalPoints(rs []runner.Result) int {
	n := 0
	for _, r := range rs {
		n += r.Stats.Points
	}
	return n
}

func totalFailed(rs []runner.Result) int {
	n := 0
	for _, r := range rs {
		n += r.Stats.Failed
	}
	return n
}

func totalRetries(rs []runner.Result) int {
	n := 0
	for _, r := range rs {
		n += r.Stats.Retries
	}
	return n
}
