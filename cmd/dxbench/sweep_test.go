package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the sweep helper process: re-exec'ing the test
// binary with DXBENCH_HELPER=1 turns it into dxbench, which lets the
// kill -9 tests SIGKILL a real worker process (a chaos kill=N worker
// SIGKILLs itself; an in-process run() would take the test down with it).
func TestMain(m *testing.M) {
	if os.Getenv("DXBENCH_HELPER") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// helperCmd builds a real dxbench process from the test binary.
func helperCmd(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "DXBENCH_HELPER=1")
	return cmd
}

// Satellite: misconfigured sweeps fail loudly with exit 1, never run zero
// points and report success.
func TestSweepUsageErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-quick", "-checkpoint", dir, "-shard", "0/0"},
		{"-quick", "-checkpoint", dir, "-shard", "4/4"},
		{"-quick", "-checkpoint", dir, "-shard", "-1/4"},
		{"-quick", "-checkpoint", dir, "-shard", "nonsense"},
		{"-quick", "-shard", "0/4"},                                    // requires -checkpoint
		{"-quick", "-coordinate"},                                      // requires -checkpoint
		{"-quick", "-worker"},                                          // requires -checkpoint
		{"-quick", "-checkpoint", dir, "-shard", "0/4", "-merge", dir}, // exclusive
		{"-quick", "-checkpoint", dir, "-coordinate", "-worker"},       // exclusive
		{"-quick", "-checkpoint", dir, "-coordinate", "-resume"},       // resume is automatic
		{"-quick", "-checkpoint", dir, "-shard", "0/4", "-metrics"},    // metrics need full run
		{"-merge", filepath.Join(dir, "empty")},                        // nothing to merge
	}
	for _, args := range cases {
		if _, errOut, code := runBench(t, args...); code != exitHard {
			t.Errorf("%v: exit %d, want %d\nstderr: %s", args, code, exitHard, errOut)
		}
	}
}

// Resuming a shard journal under a different shard spec or sweep
// configuration is a hard error, not a silent zero-point success.
func TestShardResumeMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, errOut, code := runBench(t, "-quick", "-experiment", "F6", "-checkpoint", dir, "-shard", "0/4"); code != exitOK {
		t.Fatalf("shard run exit %d: %s", code, errOut)
	}
	// Same shard file cannot be resumed under different sweep flags (the
	// fingerprint covers scale, seed and the experiment set).
	if _, errOut, code := runBench(t, "-quick", "-experiment", "F7", "-checkpoint", dir, "-shard", "0/4", "-resume"); code != exitHard {
		t.Errorf("mismatched resume: exit %d, want %d\nstderr: %s", code, exitHard, errOut)
	} else if !strings.Contains(errOut, "journal header mismatch") {
		t.Errorf("mismatched resume stderr:\n%s", errOut)
	}
	// The matching spec resumes cleanly and re-executes nothing.
	_, errOut, code := runBench(t, "-quick", "-experiment", "F6", "-checkpoint", dir, "-shard", "0/4", "-resume")
	if code != exitOK {
		t.Fatalf("matching resume exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, " 0 sim(s) journaled") {
		t.Errorf("resumed shard re-executed simulations:\n%s", errOut)
	}
}

// lastEvent returns the last event line of the given type from a
// JSON-lines event log.
func lastEvent(t *testing.T, path, typ string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	found := ""
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, `"`+typ+`"`) {
			found = line
		}
	}
	if found == "" {
		t.Fatalf("no %s event in %s:\n%s", typ, path, data)
	}
	return found
}

// Phase 1 differential proof: a 4-way static shard of the expansion study,
// merged and resumed, renders byte-identical output to the single-process
// run while re-executing zero simulations. The batch4 variant runs the
// same drill with -batch 4 on every shard and on the resume: lockstep
// batching composes with sharding and checkpoint restore without moving
// a byte.
func TestShardMergeResumeByteIdentical(t *testing.T) {
	single, _, code := runBench(t, "-quick", "-experiment", "F6")
	if code != exitOK {
		t.Fatalf("single-process exit %d", code)
	}

	for _, tc := range []struct {
		name  string
		extra []string
	}{
		{"unbatched", nil},
		{"batch4", []string{"-batch", "4"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for i := 0; i < 4; i++ {
				args := append([]string{"-quick", "-experiment", "F6", "-checkpoint", dir, "-shard", fmt.Sprintf("%d/4", i)}, tc.extra...)
				if _, errOut, code := runBench(t, args...); code != exitOK {
					t.Fatalf("shard %d exit %d: %s", i, code, errOut)
				}
			}
			mergeOut, _, code := runBench(t, "-merge", dir)
			if code != exitOK {
				t.Fatalf("merge exit %d", code)
			}
			if !strings.Contains(mergeOut, "from 4 journal(s)") {
				t.Errorf("merge summary:\n%s", mergeOut)
			}

			ev := filepath.Join(t.TempDir(), "ev.json")
			args := append([]string{"-quick", "-experiment", "F6", "-checkpoint", dir, "-resume", "-events", ev}, tc.extra...)
			merged, _, code := runBench(t, args...)
			if code != exitOK {
				t.Fatalf("resume exit %d", code)
			}
			if merged != single {
				t.Errorf("merged output differs from single-process:\n--- single ---\n%s\n--- merged ---\n%s", single, merged)
			}
			runDone := lastEvent(t, ev, "run_done")
			if strings.Contains(runDone, `"cache_misses"`) {
				t.Errorf("resume from merged journal re-executed simulations: %s", runDone)
			}
			if !strings.Contains(runDone, `"checkpoint_restored"`) {
				t.Errorf("resume restored nothing: %s", runDone)
			}
		})
	}
}

// The tentpole's acceptance proof, phase 2: a dynamic sweep whose worker
// fleet includes one that a chaos fault SIGKILLs mid-run. The coordinator
// must reclaim the dead worker's lease, the surviving worker must finish
// its ranges, and the rendered output must be byte-identical to the
// single-process run with zero re-executed journaled sims.
func TestDynamicSweepSurvivesKilledWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep")
	}
	single, _, code := runBench(t, "-quick", "-experiment", "F6")
	if code != exitOK {
		t.Fatalf("single-process exit %d", code)
	}

	dir := t.TempDir()
	ev := filepath.Join(t.TempDir(), "ev.json")
	coord := helperCmd(t, "-quick", "-experiment", "F6", "-checkpoint", dir,
		"-coordinate", "-lease-ttl", "500ms", "-events", ev)
	var coordOut, coordErr strings.Builder
	coord.Stdout, coord.Stderr = &coordOut, &coordErr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	coordDone := make(chan error, 1)
	go func() { coordDone <- coord.Wait() }()
	defer coord.Process.Kill()

	// The victim claims the first range and SIGKILLs itself on its first
	// journal append, leaving an un-renewed lease and a 1-record journal.
	victim := helperCmd(t, "-quick", "-experiment", "F6", "-checkpoint", dir,
		"-worker", "-worker-id", "victim", "-lease-ttl", "500ms", "-chaos", "kill=1")
	var victimErr strings.Builder
	victim.Stderr = &victimErr
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	err := victim.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("victim was not killed: err=%v stderr=%s", err, victimErr.String())
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("victim died of %v, want SIGKILL", ee)
	}

	// A steady worker (run in-process; it is not killed) completes the
	// sweep: everything except the victim's leased range immediately, that
	// range once the coordinator reclaims the lease.
	_, steadyStderr, code := runBench(t, "-quick", "-experiment", "F6", "-checkpoint", dir,
		"-worker", "-worker-id", "steady", "-lease-ttl", "500ms")
	if code != exitOK {
		t.Fatalf("steady worker exit %d:\n%s", code, steadyStderr)
	}

	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator: %v\nstderr: %s", err, coordErr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("coordinator did not finish\nstderr so far: %s", coordErr.String())
	}

	if got := coordOut.String(); got != single {
		t.Errorf("coordinator output differs from single-process:\n--- single ---\n%s\n--- sweep ---\n%s", single, got)
	}
	if !strings.Contains(coordErr.String(), "reclaimed expired lease") {
		t.Errorf("no lease reclaim reported:\nsteady: %s\ncoordinator: %s", steadyStderr, coordErr.String())
	}
	if !strings.Contains(lastEvent(t, ev, "lease_reclaimed"), `"range"`) {
		t.Error("lease_reclaimed event missing range")
	}
	runDone := lastEvent(t, ev, "run_done")
	if strings.Contains(runDone, `"cache_misses"`) {
		t.Errorf("final render re-executed journaled sims: %s", runDone)
	}
	if !strings.Contains(runDone, `"checkpoint_restored"`) {
		t.Errorf("final render restored nothing: %s", runDone)
	}
}

// A worker with a mismatched configuration must refuse the manifest.
func TestWorkerConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	// Publish a manifest by letting a coordinator run against an already-
	// complete sweep: shard 0/1 journals everything, merge, coordinate.
	if _, errOut, code := runBench(t, "-quick", "-experiment", "F6", "-checkpoint", dir, "-shard", "0/1"); code != exitOK {
		t.Fatalf("seed run exit %d: %s", code, errOut)
	}
	if _, _, code := runBench(t, "-merge", dir); code != exitOK {
		t.Fatalf("merge exit %d", code)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The sweep has no done markers yet, so this coordinator publishes
		// the manifest and waits; the matching worker below finishes it
		// instantly from the merged journal.
		runBench(t, "-quick", "-experiment", "F6", "-checkpoint", dir, "-coordinate", "-lease-ttl", "1s", "-timeout", "60s")
	}()
	// Wait for the manifest, then present a worker with different flags.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("manifest never appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, errOut, code := runBench(t, "-quick", "-experiment", "F7", "-checkpoint", dir, "-worker", "-worker-id", "wrong")
	if code != exitHard || !strings.Contains(errOut, "does not match the manifest") {
		t.Errorf("mismatched worker: exit %d\nstderr: %s", code, errOut)
	}
	// A correctly configured worker drains the sweep (every sim restores
	// from its journal once ranges are claimed) and the coordinator exits.
	if _, errOut, code := runBench(t, "-quick", "-experiment", "F6", "-checkpoint", dir, "-worker", "-worker-id", "right"); code != exitOK {
		t.Fatalf("matching worker exit %d: %s", code, errOut)
	}
	<-done
}
