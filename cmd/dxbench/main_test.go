package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestRunList(t *testing.T) {
	out, _, code := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"T1", "F2", "F13", "X13"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Cray C90") {
		t.Errorf("T1 output:\n%s", out)
	}
	if strings.Contains(out, "[T1 in") {
		t.Errorf("timing line printed without -timing:\n%s", out)
	}
}

func TestRunTimingFlag(t *testing.T) {
	out, errOut, code := runBench(t, "-quick", "-experiment", "T1", "-timing")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "[T1 in") {
		t.Errorf("-timing missing footer:\n%s", out)
	}
	for _, want := range []string{"run summary:", "cache:"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("-timing summary missing %q:\n%s", want, errOut)
		}
	}
}

// The timing footer must appear in every format; in CSV it is a comment so
// the stream stays machine-parseable.
func TestRunTimingInCSV(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T1", "-format", "csv", "-timing")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "# [T1 in") {
		t.Errorf("csv -timing missing commented footer:\n%s", out)
	}
}

func TestRunCSVFormat(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T1", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "machine,") {
		t.Errorf("csv output:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Error("csv output contains table decoration")
	}
}

func TestRunPlotFormat(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "F2", "-format", "plot", "-logx", "-logy")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "|") || !strings.Contains(out, "J90 sim") {
		t.Errorf("plot output:\n%s", out)
	}
}

// Usage and configuration errors are hard failures: exit code 1.
func TestRunErrors(t *testing.T) {
	if _, errOut, code := runBench(t, "-experiment", "NOPE"); code != 1 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("unknown experiment: code=%d err=%q", code, errOut)
	}
	if _, errOut, code := runBench(t, "-format", "xml"); code != 1 || !strings.Contains(errOut, "unknown format") {
		t.Errorf("unknown format: code=%d err=%q", code, errOut)
	}
	if _, _, code := runBench(t, "-badflag"); code != 1 {
		t.Errorf("bad flag accepted: code=%d", code)
	}
	if _, errOut, code := runBench(t, "-resume"); code != 1 || !strings.Contains(errOut, "-resume requires -checkpoint") {
		t.Errorf("-resume without -checkpoint: code=%d err=%q", code, errOut)
	}
	if _, errOut, code := runBench(t, "-chaos", "rate=bogus"); code != 1 || !strings.Contains(errOut, "faults:") {
		t.Errorf("bad chaos spec: code=%d err=%q", code, errOut)
	}
	if _, _, code := runBench(t, "-quick", "-experiment", "T1", "-checkpoint", t.TempDir(), "-nocache"); code != 1 {
		t.Errorf("-checkpoint with -nocache accepted: code=%d", code)
	}
}

func TestRunSeedAndN(t *testing.T) {
	a, _, _ := runBench(t, "-quick", "-experiment", "F3", "-seed", "5", "-n", "2048")
	b, _, _ := runBench(t, "-quick", "-experiment", "F3", "-seed", "5", "-n", "2048")
	if a != b {
		t.Error("same seed produced different output")
	}
}

// The determinism guarantee, end to end: the full quick suite minus T3
// (whose measured column is wall-clock) must be byte-identical across
// worker counts and with the cache disabled.
func TestRunParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite")
	}
	ids := []string{"T2", "F2", "F5", "F6", "F7", "F10", "X2", "X13"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			base, _, code := runBench(t, "-quick", "-experiment", id, "-parallel", "1")
			if code != 0 {
				t.Fatalf("exit %d", code)
			}
			for _, extra := range [][]string{
				{"-parallel", "8"},
				{"-parallel", "3"},
				{"-parallel", "8", "-nocache"},
			} {
				args := append([]string{"-quick", "-experiment", id}, extra...)
				out, _, code := runBench(t, args...)
				if code != 0 {
					t.Fatalf("%v: exit %d", extra, code)
				}
				if out != base {
					t.Errorf("%v output differs from -parallel 1", extra)
				}
			}
		})
	}
}

func TestRunEventsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.json")
	_, _, code := runBench(t, "-quick", "-experiment", "T1", "-events", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment_start"`, `"point_done"`, `"experiment_done"`, `"run_done"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("event log missing %s:\n%s", want, data)
		}
	}
}

func TestRunProgress(t *testing.T) {
	_, errOut, code := runBench(t, "-quick", "-experiment", "F2", "-progress")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "[F2]") {
		t.Errorf("progress output missing:\n%s", errOut)
	}
}

// The exit-code contract, all three codes: 0 for a clean run, 1 for a
// hard failure, 2 for a run that completed but with failed points.
func TestExitCodeContract(t *testing.T) {
	if _, _, code := runBench(t, "-quick", "-experiment", "T1"); code != 0 {
		t.Errorf("clean run: code=%d, want 0", code)
	}
	if _, _, code := runBench(t, "-experiment", "NOPE"); code != 1 {
		t.Errorf("hard failure: code=%d, want 1", code)
	}
	out, errOut, code := runBench(t, "-quick", "-experiment", "T2", "-chaos", "panic=1,seed=3")
	if code != 2 {
		t.Errorf("degraded run: code=%d, want 2\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "completed degraded") {
		t.Errorf("degraded run missing stderr summary:\n%s", errOut)
	}
	if !strings.Contains(out, "FAILED [") || !strings.Contains(out, "injected panic fault") {
		t.Errorf("degraded output missing footnoted FAILED cells:\n%s", out)
	}
}

// A panicking point must never terminate the process: the rest of the
// suite still renders and the failure is confined to footnoted cells.
func TestPanicIsolated(t *testing.T) {
	// seed=5 with a 20% panic rate fails some points of F2 but not all.
	out, _, code := runBench(t, "-quick", "-experiment", "F2", "-chaos", "panic=0.2,seed=5")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(out, "FAILED [") {
		t.Fatalf("no footnoted failures:\n%s", out)
	}
	if !strings.Contains(out, "== F2") {
		t.Errorf("table not rendered:\n%s", out)
	}
}

// Transient chaos must not change the output: with retries enabled and
// each simulation faulting at most once, a chaos run renders byte-for-byte
// what the fault-free run renders, for any worker count.
func TestChaosTransientDeterministic(t *testing.T) {
	base, _, code := runBench(t, "-quick", "-experiment", "F2", "-parallel", "1")
	if code != 0 {
		t.Fatalf("baseline exit %d", code)
	}
	spec := "error=0.2,cancel=0.1,delay=0.1,seed=7"
	for _, workers := range []string{"1", "4", "8"} {
		out, errOut, code := runBench(t, "-quick", "-experiment", "F2", "-parallel", workers, "-chaos", spec)
		if code != 0 {
			t.Fatalf("parallel=%s: exit %d\nstderr:\n%s", workers, code, errOut)
		}
		if out != base {
			t.Errorf("parallel=%s: chaos output differs from fault-free baseline", workers)
		}
	}
}

// Lockstep batching is byte-transparent: -batch K renders output
// identical to the unbatched run for any K and worker count, with and
// without the cache, and under transient chaos (where faulted lanes are
// retried solo and must not perturb batched siblings).
func TestBatchByteIdentical(t *testing.T) {
	base, _, code := runBench(t, "-quick", "-experiment", "F6", "-parallel", "1")
	if code != 0 {
		t.Fatalf("baseline exit %d", code)
	}
	for _, extra := range [][]string{
		{"-batch", "2", "-parallel", "1"},
		{"-batch", "4", "-parallel", "4"},
		{"-batch", "16", "-parallel", "8"},
		{"-batch", "4", "-parallel", "8", "-nocache"},
		{"-batch", "4", "-parallel", "4", "-chaos", "error=0.2,cancel=0.1,seed=7"},
	} {
		args := append([]string{"-quick", "-experiment", "F6"}, extra...)
		out, errOut, code := runBench(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit %d\nstderr:\n%s", extra, code, errOut)
		}
		if out != base {
			t.Errorf("%v: batched output differs from unbatched baseline", extra)
		}
	}
}

// The flush window is a scheduling knob, not a semantic one: any
// -batch-wait value — from flush-immediately to well past every
// group-fill — renders output byte-identical to the unbatched baseline.
func TestBatchWaitByteIdentical(t *testing.T) {
	base, _, code := runBench(t, "-quick", "-experiment", "F6", "-parallel", "1")
	if code != 0 {
		t.Fatalf("baseline exit %d", code)
	}
	for _, wait := range []string{"1ns", "200us", "50ms"} {
		out, errOut, code := runBench(t, "-quick", "-experiment", "F6",
			"-batch", "4", "-parallel", "4", "-batch-wait", wait)
		if code != 0 {
			t.Fatalf("batch-wait=%s: exit %d\nstderr:\n%s", wait, code, errOut)
		}
		if out != base {
			t.Errorf("batch-wait=%s: output differs from unbatched baseline", wait)
		}
	}
}

// -batch composes with -resume: journaled lanes restore from the
// checkpoint without re-execution (no cache_misses in run_done), and the
// resumed batched output is byte-identical to the batched first run.
func TestCheckpointResumeBatched(t *testing.T) {
	dir := t.TempDir()
	ev := filepath.Join(t.TempDir(), "ev.json")

	out1, _, code := runBench(t, "-quick", "-experiment", "F6", "-batch", "4", "-checkpoint", dir)
	if code != 0 {
		t.Fatalf("first run exit %d", code)
	}
	out2, _, code := runBench(t, "-quick", "-experiment", "F6", "-batch", "4", "-checkpoint", dir, "-resume", "-events", ev)
	if code != 0 {
		t.Fatalf("resumed run exit %d", code)
	}
	if out2 != out1 {
		t.Errorf("batched resume differs:\n--- first ---\n%s\n--- resumed ---\n%s", out1, out2)
	}
	events, err := os.ReadFile(ev)
	if err != nil {
		t.Fatal(err)
	}
	runDone := ""
	for _, line := range strings.Split(string(events), "\n") {
		if strings.Contains(line, `"run_done"`) {
			runDone = line
		}
	}
	if runDone == "" {
		t.Fatalf("no run_done event:\n%s", events)
	}
	if strings.Contains(runDone, `"cache_misses"`) {
		t.Errorf("batched resume re-executed journaled sims: %s", runDone)
	}
	if !strings.Contains(runDone, `"checkpoint_restored"`) {
		t.Errorf("batched resume restored nothing: %s", runDone)
	}
}

// Checkpoint/resume: a resumed run must render byte-identical output
// while re-executing zero journaled simulations (run_done shows no cache
// misses, only checkpoint restores).
func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ev1 := filepath.Join(t.TempDir(), "ev1.json")
	ev2 := filepath.Join(t.TempDir(), "ev2.json")

	out1, _, code := runBench(t, "-quick", "-experiment", "T2", "-checkpoint", dir, "-events", ev1)
	if code != 0 {
		t.Fatalf("first run exit %d", code)
	}
	out2, _, code := runBench(t, "-quick", "-experiment", "T2", "-checkpoint", dir, "-resume", "-events", ev2)
	if code != 0 {
		t.Fatalf("resumed run exit %d", code)
	}
	if out2 != out1 {
		t.Errorf("resumed output differs:\n--- first ---\n%s\n--- resumed ---\n%s", out1, out2)
	}

	events, err := os.ReadFile(ev2)
	if err != nil {
		t.Fatal(err)
	}
	runDone := ""
	for _, line := range strings.Split(string(events), "\n") {
		if strings.Contains(line, `"run_done"`) {
			runDone = line
		}
	}
	if runDone == "" {
		t.Fatalf("no run_done event:\n%s", events)
	}
	if strings.Contains(runDone, `"cache_misses"`) {
		t.Errorf("resumed run re-executed simulations: %s", runDone)
	}
	if !strings.Contains(runDone, `"checkpoint_restored"`) {
		t.Errorf("resumed run restored nothing: %s", runDone)
	}
	if !strings.Contains(string(events), `"checkpoint_loaded"`) {
		t.Errorf("no checkpoint_loaded event:\n%s", events)
	}
}

// A journal truncated by a crash mid-write must resume: the torn record
// is recomputed, the rest restored, and the output unchanged.
func TestCheckpointResumeTruncated(t *testing.T) {
	dir := t.TempDir()
	out1, _, code := runBench(t, "-quick", "-experiment", "T2", "-checkpoint", dir)
	if code != 0 {
		t.Fatalf("first run exit %d", code)
	}
	path := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	out2, errOut, code := runBench(t, "-quick", "-experiment", "T2", "-checkpoint", dir, "-resume")
	if code != 0 {
		t.Fatalf("resumed run exit %d", code)
	}
	if out2 != out1 {
		t.Error("resume from truncated journal changed the output")
	}
	if !strings.Contains(errOut, "checkpoint: skipping") {
		t.Errorf("torn record not reported:\n%s", errOut)
	}
}

// TestSurrogateDeterministic pins the byte-determinism contract under
// surrogate routing: -surrogate always must produce identical output
// (tables and metrics) for every worker count, exactly like plain runs.
func TestSurrogateDeterministic(t *testing.T) {
	mfile := filepath.Join(t.TempDir(), "m.om")
	out1, _, code := runBench(t, "-quick", "-experiment", "F14", "-surrogate", "always",
		"-parallel", "1", "-metrics-out", mfile)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	m1, err := os.ReadFile(mfile)
	if err != nil {
		t.Fatal(err)
	}
	out8, _, code := runBench(t, "-quick", "-experiment", "F14", "-surrogate", "always",
		"-parallel", "8", "-metrics-out", mfile)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	m8, err := os.ReadFile(mfile)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out8 {
		t.Errorf("-surrogate always output differs across -parallel 1/8:\n%s\n---\n%s", out1, out8)
	}
	if string(m1) != string(m8) {
		t.Errorf("-surrogate always metrics differ across -parallel 1/8:\n%s\n---\n%s", m1, m8)
	}
	if !regexp.MustCompile(`[0-9]\*`).MatchString(out1) {
		t.Errorf("no surrogate-tagged cells under -surrogate always:\n%s", out1)
	}
	if !strings.Contains(string(m1), "dxbsp_surrogate_points") {
		t.Errorf("metrics export missing surrogate series:\n%s", m1)
	}
}

// TestSurrogateModes: never must leave output untouched (no tags, no
// surrogate series), and a bad mode is a usage error.
func TestSurrogateModes(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "F14", "-surrogate", "never")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if regexp.MustCompile(`[0-9]\*`).MatchString(out) {
		t.Errorf("surrogate tags under -surrogate never:\n%s", out)
	}
	if _, errOut, code := runBench(t, "-surrogate", "sometimes"); code != exitHard ||
		!strings.Contains(errOut, "surrogate mode") {
		t.Errorf("bad mode: exit %d, stderr %q", code, errOut)
	}
}

// TestListIncludesHuge: the huge-grid registry is discoverable.
func TestListIncludesHuge(t *testing.T) {
	out, _, code := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "F14") || !strings.Contains(out, "-surrogate auto") {
		t.Errorf("list missing huge experiments:\n%s", out)
	}
}
