package main

import (
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestRunList(t *testing.T) {
	out, _, code := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"T1", "F2", "F13", "X13"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Cray C90") || !strings.Contains(out, "[T1 in") {
		t.Errorf("T1 output:\n%s", out)
	}
}

func TestRunCSVFormat(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T1", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "machine,") {
		t.Errorf("csv output:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Error("csv output contains table decoration")
	}
}

func TestRunPlotFormat(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "F2", "-format", "plot", "-logx", "-logy")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "|") || !strings.Contains(out, "J90 sim") {
		t.Errorf("plot output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, errOut, code := runBench(t, "-experiment", "NOPE"); code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("unknown experiment: code=%d err=%q", code, errOut)
	}
	if _, errOut, code := runBench(t, "-format", "xml"); code != 2 || !strings.Contains(errOut, "unknown format") {
		t.Errorf("unknown format: code=%d err=%q", code, errOut)
	}
	if _, _, code := runBench(t, "-badflag"); code != 2 {
		t.Errorf("bad flag accepted: code=%d", code)
	}
}

func TestRunSeedAndN(t *testing.T) {
	a, _, _ := runBench(t, "-quick", "-experiment", "F3", "-seed", "5", "-n", "2048")
	b, _, _ := runBench(t, "-quick", "-experiment", "F3", "-seed", "5", "-n", "2048")
	stripTime := func(s string) string {
		i := strings.LastIndex(s, "[F3")
		if i < 0 {
			return s
		}
		return s[:i]
	}
	if stripTime(a) != stripTime(b) {
		t.Error("same seed produced different output")
	}
}
