package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestRunList(t *testing.T) {
	out, _, code := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"T1", "F2", "F13", "X13"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Cray C90") {
		t.Errorf("T1 output:\n%s", out)
	}
	if strings.Contains(out, "[T1 in") {
		t.Errorf("timing line printed without -timing:\n%s", out)
	}
}

func TestRunTimingFlag(t *testing.T) {
	out, errOut, code := runBench(t, "-quick", "-experiment", "T1", "-timing")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "[T1 in") {
		t.Errorf("-timing missing footer:\n%s", out)
	}
	for _, want := range []string{"run summary:", "cache:"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("-timing summary missing %q:\n%s", want, errOut)
		}
	}
}

// The timing footer must appear in every format; in CSV it is a comment so
// the stream stays machine-parseable.
func TestRunTimingInCSV(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T1", "-format", "csv", "-timing")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "# [T1 in") {
		t.Errorf("csv -timing missing commented footer:\n%s", out)
	}
}

func TestRunCSVFormat(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T1", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "machine,") {
		t.Errorf("csv output:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Error("csv output contains table decoration")
	}
}

func TestRunPlotFormat(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "F2", "-format", "plot", "-logx", "-logy")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "|") || !strings.Contains(out, "J90 sim") {
		t.Errorf("plot output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, errOut, code := runBench(t, "-experiment", "NOPE"); code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("unknown experiment: code=%d err=%q", code, errOut)
	}
	if _, errOut, code := runBench(t, "-format", "xml"); code != 2 || !strings.Contains(errOut, "unknown format") {
		t.Errorf("unknown format: code=%d err=%q", code, errOut)
	}
	if _, _, code := runBench(t, "-badflag"); code != 2 {
		t.Errorf("bad flag accepted: code=%d", code)
	}
}

func TestRunSeedAndN(t *testing.T) {
	a, _, _ := runBench(t, "-quick", "-experiment", "F3", "-seed", "5", "-n", "2048")
	b, _, _ := runBench(t, "-quick", "-experiment", "F3", "-seed", "5", "-n", "2048")
	if a != b {
		t.Error("same seed produced different output")
	}
}

// The determinism guarantee, end to end: the full quick suite minus T3
// (whose measured column is wall-clock) must be byte-identical across
// worker counts and with the cache disabled.
func TestRunParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite")
	}
	ids := []string{"T2", "F2", "F5", "F6", "F7", "F10", "X2", "X13"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			base, _, code := runBench(t, "-quick", "-experiment", id, "-parallel", "1")
			if code != 0 {
				t.Fatalf("exit %d", code)
			}
			for _, extra := range [][]string{
				{"-parallel", "8"},
				{"-parallel", "3"},
				{"-parallel", "8", "-nocache"},
			} {
				args := append([]string{"-quick", "-experiment", id}, extra...)
				out, _, code := runBench(t, args...)
				if code != 0 {
					t.Fatalf("%v: exit %d", extra, code)
				}
				if out != base {
					t.Errorf("%v output differs from -parallel 1", extra)
				}
			}
		})
	}
}

func TestRunEventsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.json")
	_, _, code := runBench(t, "-quick", "-experiment", "T1", "-events", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment_start"`, `"point_done"`, `"experiment_done"`, `"run_done"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("event log missing %s:\n%s", want, data)
		}
	}
}

func TestRunProgress(t *testing.T) {
	_, errOut, code := runBench(t, "-quick", "-experiment", "F2", "-progress")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "[F2]") {
		t.Errorf("progress output missing:\n%s", errOut)
	}
}
