// Command benchjson converts `go test -bench` output into a stable JSON
// document, and compares two such documents for wall-clock regressions.
// It is the machinery behind the CI benchmark gate and the committed
// BENCH_sim.json trajectory file.
//
// Usage:
//
//	go test -bench Sim -benchmem -count 5 . | benchjson > BENCH_sim.json
//	benchjson -compare base.json head.json -threshold 15
//
// Conversion reads benchmark lines from stdin (or from files named as
// arguments), groups repeated runs of the same benchmark, and records the
// median ns/op, B/op and allocs/op per benchmark — medians so that one
// noisy run on a shared CI box cannot move the recorded number.
//
// Compare exits 2 when any benchmark present in both files is slower in
// head by more than threshold percent (default 15), printing a per-
// benchmark delta table either way. Missing counters (no -benchmem) are
// recorded as -1 and never compared.
//
// Custom benchmark metrics (testing.B.ReportMetric) are recorded in a
// per-benchmark "metrics" map. Throughput metrics — any whose unit ends
// in "/sec", like the batch engine's points/sec — join the regression
// gate with the sign flipped: higher is better, so head falling below
// base by more than threshold percent fails the compare.
//
// History mode records the perf trajectory across commits rather than
// just the latest snapshot:
//
//	go test -bench Sim -benchmem -count 5 . | benchjson -history BENCH_history.json -commit $(git rev-parse --short HEAD)
//
// It parses benchmark output exactly like conversion, then appends a
// dated, commit-tagged entry to the named history file (created if
// missing). Re-running for the same commit replaces that commit's entry
// instead of duplicating it, so a retried CI job stays idempotent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

const (
	exitOK         = 0
	exitUsage      = 1
	exitRegression = 2
)

// Bench is the recorded shape of one benchmark.
type Bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
	// Metrics records custom per-op metrics (testing.B.ReportMetric) by
	// unit, e.g. "points/sec" for the batch benches.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the document benchjson emits and consumes.
type File struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// HistoryEntry is one commit's recorded benchmark medians.
type HistoryEntry struct {
	Date       string           `json:"date"`
	Commit     string           `json:"commit"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// HistoryFile is the append-only perf trajectory document.
type HistoryFile struct {
	Entries []HistoryEntry `json:"entries"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		compare   = fs.Bool("compare", false, "compare two JSON files: benchjson -compare base.json head.json")
		threshold = fs.Float64("threshold", 15, "percent ns/op slowdown that fails -compare")
		history   = fs.String("history", "", "append a dated, commit-tagged entry to this history file instead of emitting a snapshot")
		commit    = fs.String("commit", "", "commit id recorded with -history (default \"unknown\")")
		date      = fs.String("date", "", "date recorded with -history as YYYY-MM-DD (default today, UTC)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchjson: -compare needs exactly two files: base.json head.json")
			return exitUsage
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *threshold, stdout, stderr)
	}
	if *history != "" {
		return runHistory(*history, *commit, *date, fs.Args(), stdin, stdout, stderr)
	}
	return runConvert(fs.Args(), stdin, stdout, stderr)
}

// collect parses benchmark output from the named files (or stdin when
// none) and reduces repeated runs to per-benchmark medians.
func collect(paths []string, stdin io.Reader) (File, error) {
	readers := []io.Reader{stdin}
	closers := []io.Closer{}
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	if len(paths) > 0 {
		readers = readers[:0]
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				return File{}, err
			}
			closers = append(closers, f)
			readers = append(readers, f)
		}
	}
	samples := map[string][]Bench{}
	for _, r := range readers {
		if err := parseBenchOutput(r, samples); err != nil {
			return File{}, err
		}
	}
	out := File{Benchmarks: map[string]Bench{}}
	for name, runs := range samples {
		b := Bench{
			NsPerOp:     median(runs, func(b Bench) float64 { return b.NsPerOp }),
			BytesPerOp:  median(runs, func(b Bench) float64 { return b.BytesPerOp }),
			AllocsPerOp: median(runs, func(b Bench) float64 { return b.AllocsPerOp }),
			Samples:     len(runs),
		}
		byUnit := map[string][]float64{}
		for _, r := range runs {
			for unit, v := range r.Metrics {
				byUnit[unit] = append(byUnit[unit], v)
			}
		}
		if len(byUnit) > 0 {
			b.Metrics = make(map[string]float64, len(byUnit))
			for unit, vals := range byUnit {
				sort.Float64s(vals)
				b.Metrics[unit] = medianOf(vals)
			}
		}
		out.Benchmarks[name] = b
	}
	return out, nil
}

func runConvert(paths []string, stdin io.Reader, stdout, stderr io.Writer) int {
	out, err := collect(paths, stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return exitUsage
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return exitUsage
	}
	return exitOK
}

// runHistory appends (or, for a repeated commit, replaces) one entry in
// the perf-trajectory file. The file is created on first use; corrupt
// history is an error rather than silently restarting the record.
func runHistory(path, commit, date string, paths []string, stdin io.Reader, stdout, stderr io.Writer) int {
	snap, err := collect(paths, stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return exitUsage
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: -history: no benchmarks in input")
		return exitUsage
	}
	if commit == "" {
		commit = "unknown"
	}
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}

	var hist HistoryFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &hist); err != nil {
			fmt.Fprintf(stderr, "benchjson: %s: %v\n", path, err)
			return exitUsage
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return exitUsage
	}

	entry := HistoryEntry{Date: date, Commit: commit, Benchmarks: snap.Benchmarks}
	replaced := false
	for i := range hist.Entries {
		if hist.Entries[i].Commit == commit && commit != "unknown" {
			hist.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		hist.Entries = append(hist.Entries, entry)
	}

	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(hist); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return exitUsage
	}
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return exitUsage
	}
	verb := "appended to"
	if replaced {
		verb = "replaced in"
	}
	fmt.Fprintf(stdout, "benchjson: %d benchmark(s) %s %s (%s, %s; %d entries)\n",
		len(entry.Benchmarks), verb, path, date, commit, len(hist.Entries))
	return exitOK
}

// benchLine matches e.g.
//
//	BenchmarkSimScatter64K-8   36   34233920 ns/op   201736 B/op   519 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parseBenchOutput(r io.Reader, into map[string][]Bench) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		b := Bench{NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue // custom metric with non-numeric value; skip pair
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				// Custom ReportMetric pair, recorded by unit.
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		if b.NsPerOp < 0 {
			continue // not a timing line (e.g. a metric-only continuation)
		}
		into[name] = append(into[name], b)
	}
	return sc.Err()
}

func median(runs []Bench, get func(Bench) float64) float64 {
	vals := make([]float64, 0, len(runs))
	for _, r := range runs {
		vals = append(vals, get(r))
	}
	sort.Float64s(vals)
	return medianOf(vals)
}

// medianOf returns the median of an already-sorted slice.
func medianOf(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return -1
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func runCompare(basePath, headPath string, threshold float64, stdout, stderr io.Writer) int {
	base, err := readFile(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return exitUsage
	}
	head, err := readFile(headPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return exitUsage
	}
	names := make([]string, 0, len(head.Benchmarks))
	for name := range head.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmarks in common")
		return exitUsage
	}
	regressions := 0
	fmt.Fprintf(stdout, "%-28s %14s %14s %8s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, name := range names {
		b, h := base.Benchmarks[name], head.Benchmarks[name]
		delta := 100 * (h.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-28s %14.0f %14.0f %+7.1f%%%s\n", name, b.NsPerOp, h.NsPerOp, delta, mark)
		// Throughput metrics gate with the sign flipped: higher is better.
		units := make([]string, 0, len(h.Metrics))
		for unit := range h.Metrics {
			if strings.HasSuffix(unit, "/sec") {
				if _, ok := b.Metrics[unit]; ok {
					units = append(units, unit)
				}
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			bv, hv := b.Metrics[unit], h.Metrics[unit]
			if bv <= 0 {
				continue
			}
			delta := 100 * (hv - bv) / bv
			mark := ""
			if delta < -threshold {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Fprintf(stdout, "%-28s %14.0f %14.0f %+7.1f%%%s\n", name+" ["+unit+"]", bv, hv, delta, mark)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchjson: %d benchmark(s) slower than base by more than %g%%\n", regressions, threshold)
		return exitRegression
	}
	return exitOK
}

func readFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return File{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return f, nil
}
