package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: dxbsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableT1       	   54915	     20408 ns/op	    6320 B/op	     232 allocs/op
BenchmarkTableT1       	   60510	     19592 ns/op	    6320 B/op	     232 allocs/op
BenchmarkTableT1       	   59742	     19621 ns/op	    6320 B/op	     232 allocs/op
BenchmarkSimScatter64K-8 	      13	  85576734 ns/op	42548208 B/op	  538956 allocs/op
BenchmarkAblationSimVsModel 	     100	   1000000 ns/op	         1.002 sim/model
PASS
ok  	dxbsp	12.529s
`

func runTool(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

func TestConvert(t *testing.T) {
	out, errOut, code := runTool(t, sampleBench)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var f File
	if err := json.Unmarshal([]byte(out), &f); err != nil {
		t.Fatal(err)
	}
	t1, ok := f.Benchmarks["TableT1"]
	if !ok {
		t.Fatalf("TableT1 missing: %v", f.Benchmarks)
	}
	if t1.Samples != 3 {
		t.Errorf("TableT1 samples = %d, want 3", t1.Samples)
	}
	if t1.NsPerOp != 19621 { // median of 20408, 19592, 19621
		t.Errorf("TableT1 ns/op = %v, want median 19621", t1.NsPerOp)
	}
	if t1.AllocsPerOp != 232 {
		t.Errorf("TableT1 allocs/op = %v", t1.AllocsPerOp)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	sc, ok := f.Benchmarks["SimScatter64K"]
	if !ok || sc.NsPerOp != 85576734 {
		t.Errorf("SimScatter64K = %+v, ok=%v", sc, ok)
	}
	// Custom metrics must not corrupt parsing, and are recorded by unit.
	ab, ok := f.Benchmarks["AblationSimVsModel"]
	if !ok || ab.NsPerOp != 1000000 {
		t.Errorf("AblationSimVsModel = %+v, ok=%v", ab, ok)
	}
	if ab.Metrics["sim/model"] != 1.002 {
		t.Errorf("custom metric not recorded: %+v", ab.Metrics)
	}
}

// Custom throughput metrics reduce to per-unit medians like the builtin
// counters.
func TestConvertMetricMedians(t *testing.T) {
	input := `BenchmarkBatchExpansion-8 	 5	 2000000 ns/op	 48000 points/sec	 3.8 xscalar
BenchmarkBatchExpansion-8 	 5	 2100000 ns/op	 50000 points/sec	 4.0 xscalar
BenchmarkBatchExpansion-8 	 5	 2200000 ns/op	 52500 points/sec	 4.1 xscalar
`
	out, errOut, code := runTool(t, input)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var f File
	if err := json.Unmarshal([]byte(out), &f); err != nil {
		t.Fatal(err)
	}
	be := f.Benchmarks["BatchExpansion"]
	if be.Metrics["points/sec"] != 50000 {
		t.Errorf("points/sec median = %v, want 50000", be.Metrics["points/sec"])
	}
	if be.Metrics["xscalar"] != 4.0 {
		t.Errorf("xscalar median = %v, want 4.0", be.Metrics["xscalar"])
	}
}

func TestConvertFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code := runTool(t, "", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "TableT1") {
		t.Errorf("file input not parsed: %s", out)
	}
}

func writeJSON(t *testing.T, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePassAndFail(t *testing.T) {
	base := writeJSON(t, File{Benchmarks: map[string]Bench{
		"Fast": {NsPerOp: 1000, Samples: 1},
		"Slow": {NsPerOp: 1000, Samples: 1},
	}})

	ok := writeJSON(t, File{Benchmarks: map[string]Bench{
		"Fast": {NsPerOp: 1100, Samples: 1}, // +10% < 15%: fine
		"Slow": {NsPerOp: 900, Samples: 1},
	}})
	out, _, code := runTool(t, "", "-compare", base, ok)
	if code != 0 {
		t.Fatalf("within-threshold compare failed (%d):\n%s", code, out)
	}

	bad := writeJSON(t, File{Benchmarks: map[string]Bench{
		"Fast": {NsPerOp: 1200, Samples: 1}, // +20% > 15%: regression
		"Slow": {NsPerOp: 900, Samples: 1},
	}})
	out, errOut, code := runTool(t, "", "-compare", base, bad)
	if code != exitRegression {
		t.Fatalf("regression not detected (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(errOut, "slower than base") {
		t.Errorf("missing regression report:\n%s\n%s", out, errOut)
	}
}

// Throughput metrics (units ending in /sec) gate higher-is-better: a
// points/sec drop beyond the threshold is a regression even when ns/op
// is clean, and a rise never is. Non-throughput metrics (no /sec suffix)
// stay out of the gate.
func TestCompareThroughputMetrics(t *testing.T) {
	base := writeJSON(t, File{Benchmarks: map[string]Bench{
		"BatchExpansion": {NsPerOp: 1000, Samples: 1,
			Metrics: map[string]float64{"points/sec": 50000, "xscalar": 4.0}},
	}})

	ok := writeJSON(t, File{Benchmarks: map[string]Bench{
		"BatchExpansion": {NsPerOp: 1000, Samples: 1,
			Metrics: map[string]float64{"points/sec": 60000, "xscalar": 1.0}},
	}})
	out, _, code := runTool(t, "", "-compare", base, ok)
	if code != 0 {
		t.Fatalf("throughput gain flagged as regression (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "BatchExpansion [points/sec]") {
		t.Errorf("metric delta row missing:\n%s", out)
	}

	bad := writeJSON(t, File{Benchmarks: map[string]Bench{
		"BatchExpansion": {NsPerOp: 1000, Samples: 1,
			Metrics: map[string]float64{"points/sec": 40000}}, // -20% < -15%
	}})
	out, errOut, code := runTool(t, "", "-compare", base, bad)
	if code != exitRegression {
		t.Fatalf("throughput regression not detected (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "[points/sec]") || !strings.Contains(out, "REGRESSION") {
		t.Errorf("missing throughput regression report:\n%s\n%s", out, errOut)
	}
}

func TestCompareThresholdFlag(t *testing.T) {
	base := writeJSON(t, File{Benchmarks: map[string]Bench{"B": {NsPerOp: 1000, Samples: 1}}})
	head := writeJSON(t, File{Benchmarks: map[string]Bench{"B": {NsPerOp: 1100, Samples: 1}}})
	if _, _, code := runTool(t, "", "-compare", "-threshold", "5", base, head); code != exitRegression {
		t.Errorf("+10%% passed a 5%% threshold (code %d)", code)
	}
	if _, _, code := runTool(t, "", "-compare", "-threshold", "25", base, head); code != 0 {
		t.Errorf("+10%% failed a 25%% threshold (code %d)", code)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	base := writeJSON(t, File{Benchmarks: map[string]Bench{"A": {NsPerOp: 1, Samples: 1}}})
	other := writeJSON(t, File{Benchmarks: map[string]Bench{"B": {NsPerOp: 1, Samples: 1}}})
	if _, _, code := runTool(t, "", "-compare", base); code != exitUsage {
		t.Errorf("one-arg compare: code %d", code)
	}
	if _, _, code := runTool(t, "", "-compare", base, filepath.Join(t.TempDir(), "nope.json")); code != exitUsage {
		t.Errorf("missing file: code %d", code)
	}
	if _, errOut, code := runTool(t, "", "-compare", base, other); code != exitUsage || !strings.Contains(errOut, "no benchmarks in common") {
		t.Errorf("disjoint files: code %d err %q", code, errOut)
	}
}

func TestConvertEmptyInput(t *testing.T) {
	out, _, code := runTool(t, "PASS\nok  \tdxbsp\t1.0s\n")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var f File
	if err := json.Unmarshal([]byte(out), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Errorf("benchmarks parsed from empty input: %v", f.Benchmarks)
	}
}

func readHistory(t *testing.T, path string) HistoryFile {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var h HistoryFile
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHistoryAppendAndReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")

	// First entry creates the file.
	out, errOut, code := runTool(t, sampleBench, "-history", path, "-commit", "aaa1111", "-date", "2026-08-01")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "appended to") {
		t.Errorf("first run output: %q", out)
	}
	h := readHistory(t, path)
	if len(h.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(h.Entries))
	}
	e := h.Entries[0]
	if e.Date != "2026-08-01" || e.Commit != "aaa1111" {
		t.Errorf("entry tags = %q %q", e.Date, e.Commit)
	}
	if e.Benchmarks["TableT1"].NsPerOp != 19621 {
		t.Errorf("entry medians not recorded: %+v", e.Benchmarks["TableT1"])
	}

	// A different commit appends.
	if _, _, code := runTool(t, sampleBench, "-history", path, "-commit", "bbb2222", "-date", "2026-08-02"); code != 0 {
		t.Fatalf("second append failed")
	}
	if h = readHistory(t, path); len(h.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(h.Entries))
	}

	// Re-running the same commit replaces its entry (idempotent CI retry).
	out, _, code = runTool(t, sampleBench, "-history", path, "-commit", "bbb2222", "-date", "2026-08-03")
	if code != 0 {
		t.Fatalf("replace failed")
	}
	if !strings.Contains(out, "replaced in") {
		t.Errorf("replace output: %q", out)
	}
	h = readHistory(t, path)
	if len(h.Entries) != 2 {
		t.Fatalf("entries after replace = %d, want 2", len(h.Entries))
	}
	if h.Entries[1].Date != "2026-08-03" {
		t.Errorf("replaced entry date = %q", h.Entries[1].Date)
	}
	if h.Entries[0].Commit != "aaa1111" {
		t.Errorf("earlier entry disturbed: %+v", h.Entries[0])
	}
}

func TestHistoryDefaultsAndErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")

	// Defaults: commit "unknown", date filled in (format only checked).
	if _, errOut, code := runTool(t, sampleBench, "-history", path); code != 0 {
		t.Fatalf("defaults run failed: %s", errOut)
	}
	h := readHistory(t, path)
	if h.Entries[0].Commit != "unknown" {
		t.Errorf("default commit = %q", h.Entries[0].Commit)
	}
	if len(h.Entries[0].Date) != len("2006-01-02") {
		t.Errorf("default date = %q", h.Entries[0].Date)
	}

	// Unknown commits never replace each other.
	if _, _, code := runTool(t, sampleBench, "-history", path); code != 0 {
		t.Fatal("second defaults run failed")
	}
	if h = readHistory(t, path); len(h.Entries) != 2 {
		t.Errorf("unknown-commit entries = %d, want 2 (must append, not replace)", len(h.Entries))
	}

	// Empty input is an error, not an empty entry.
	if _, errOut, code := runTool(t, "no benchmarks here", "-history", path); code == 0 {
		t.Error("empty input accepted")
	} else if !strings.Contains(errOut, "no benchmarks") {
		t.Errorf("error output: %q", errOut)
	}

	// Corrupt history is an error, not a restart.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := runTool(t, sampleBench, "-history", bad); code == 0 {
		t.Error("corrupt history accepted")
	}
}
