// Quickstart: describe a machine in (d,x)-BSP terms, profile an access
// pattern, predict its cost, and check the prediction against the
// cycle-level bank simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
)

func main() {
	// The simulated 8-processor Cray J90: 512 DRAM banks (expansion
	// x = 64), bank delay d = 14 cycles, gap g = 1.
	m := core.J90()
	fmt.Println("machine:", m)
	fmt.Printf("effective bank gap d/x = %.3f (memory keeps up with processors: %v)\n\n",
		m.EffectiveBankGap(), m.BandwidthMatched())

	n := 1 << 16
	fmt.Printf("scatter of n=%d elements; contention crossover k* = %.0f\n\n",
		n, m.ContentionCrossover(n))

	g := rng.New(42)
	cases := []struct {
		name  string
		addrs []uint64
	}{
		{"unit stride (no contention)", patterns.Strided(n, 0, 1)},
		{"uniform random", patterns.Uniform(n, 1<<30, g)},
		{"contention k=1024", patterns.Contention(n, 1024, 1)},
		{"all to one location", patterns.AllSame(n, 7)},
	}
	fmt.Printf("%-30s %12s %12s %12s\n", "pattern", "BSP", "(d,x)-BSP", "simulated")
	for _, c := range cases {
		pt := core.NewPattern(c.addrs, m.Procs)
		prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
		r, err := sim.Run(sim.Config{Machine: m}, pt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-30s %12.0f %12.0f %12.0f\n",
			c.name, m.PredictBSP(prof), m.PredictDXBSP(prof), r.Cycles)
	}
	fmt.Println("\nBSP misses the contention entirely; the (d,x)-BSP tracks the simulator.")
}
