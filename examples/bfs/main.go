// Breadth-first search with contention accounting: frontier expansion on
// hub-heavy graphs concentrates gathers and scatters on high-degree
// vertices — the irregular access pattern class the (d,x)-BSP was built
// to price.
//
// Run with: go run ./examples/bfs
package main

import (
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

func main() {
	const n = 1 << 14
	graphs := []struct {
		name string
		g    *algos.Graph
		src  int64
	}{
		{"path", algos.PathGraph(n), 0},
		{"random m=4n", algos.RandomGraph(n, 4*n, rng.New(1)), 0},
		{"star (from leaf)", algos.StarGraph(n), 1},
	}
	fmt.Printf("%-18s %8s %10s %14s %14s %12s\n",
		"graph", "levels", "maxdeg", "cycles", "cycles/vertex", "contention")
	for _, gr := range graphs {
		a := algos.BuildAdj(gr.g)
		vm := vector.New(core.J90())
		res := algos.BFS(vm, a, gr.src)

		// Verify against the serial traversal before reporting.
		want := algos.SerialBFS(a, gr.src)
		for v := range want {
			if res.Level[v] != want[v] {
				panic("BFS mismatch on " + gr.name)
			}
		}
		fmt.Printf("%-18s %8d %10d %14.0f %14.2f %12d\n",
			gr.name, res.Levels, a.MaxDegree(), vm.Cycles(),
			vm.Cycles()/float64(gr.g.N), res.MaxContention)
	}
	fmt.Println("\nHub-heavy graphs buy short frontiers at the price of concentrated access;")
	fmt.Println("the per-vertex cycle figures show the (d,x)-BSP charging exactly that.")
}
