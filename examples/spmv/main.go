// Sparse matrix–vector multiplication with contention analysis: the
// paper's Figure 12 scenario. A random sparse matrix is multiplied against
// a vector while one column is progressively densified; the dense column
// turns the x-gather into a hot spot whose cost only the (d,x)-BSP
// predicts.
//
// Run with: go run ./examples/spmv
package main

import (
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

func main() {
	const (
		rows      = 1 << 15
		cols      = 1024
		nnzPerRow = 4
	)
	g := rng.New(7)
	x := make([]int64, cols)
	for i := range x {
		x[i] = int64(g.Intn(100))
	}

	fmt.Printf("SpMV on the simulated J90: %d rows, %d nnz/row, CSR + segmented sums\n\n", rows, nnzPerRow)
	fmt.Printf("%-18s %14s %16s %14s %12s\n",
		"dense column len", "total cycles", "gather (d,x)-BSP", "gather BSP", "contention")

	for _, dense := range []int{1, 64, 1024, 8192, rows} {
		a := algos.RandomCSR(rows, cols, nnzPerRow, dense, g.Split())
		vm := vector.New(core.J90())
		res := algos.SpMV(vm, a, x)

		// Verify against the serial reference before reporting.
		want := algos.SerialSpMV(a, x)
		for r := range want {
			if res.Y[r] != want[r] {
				panic("SpMV result mismatch")
			}
		}
		fmt.Printf("%-18d %14.0f %16.0f %14.0f %12d\n",
			dense, vm.Cycles(), res.PredictedDXBSP, res.PredictedBSP, res.GatherContention)
	}
	fmt.Println("\nThe BSP column is flat — it cannot see the dense column at all.")
}
