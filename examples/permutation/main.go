// Random permutation race: the QRQW dart-throwing algorithm against the
// EREW radix-sort approach (the paper's Figure 11). The QRQW algorithm
// tolerates a little well-accounted contention per round and wins across
// the whole sweep.
//
// Run with: go run ./examples/permutation
package main

import (
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

func main() {
	fmt.Println("random permutation generation on the simulated J90")
	fmt.Printf("\n%-10s %14s %8s %12s %14s %10s\n",
		"n", "QRQW cycles", "rounds", "contention", "EREW cycles", "EREW/QRQW")

	for n := 1 << 10; n <= 1<<18; n <<= 2 {
		vmQ := vector.New(core.J90())
		q := algos.RandomPermuteQRQW(vmQ, n, rng.New(uint64(n)))
		if !algos.IsPermutation(q.Perm) {
			panic("QRQW produced a non-permutation")
		}

		vmE := vector.New(core.J90())
		e := algos.RandomPermuteEREW(vmE, n, 40, rng.New(uint64(n)))
		if !algos.IsPermutation(e.Perm) {
			panic("EREW produced a non-permutation")
		}

		fmt.Printf("%-10d %14.0f %8d %12d %14.0f %10.2f\n",
			n, vmQ.Cycles(), q.Rounds, q.MaxContention, vmE.Cycles(),
			vmE.Cycles()/vmQ.Cycles())
	}
	fmt.Println("\nAllowing bounded, well-accounted contention beats avoiding it entirely.")
}
