// QRQW PRAM emulation demo: run the same QRQW program on (d,x)-BSP
// machines with different bank delays and expansion factors, and watch
// the emulation stay work-preserving exactly when the theory says it can
// (Section 5 of the paper).
//
// Run with: go run ./examples/emulation
package main

import (
	"fmt"
	"math"

	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/qrqw"
	"dxbsp/internal/rng"
)

func main() {
	const (
		p     = 8
		v     = 1 << 14 // virtual processors (slackness v/p = 2048)
		steps = 4
	)
	prog := qrqw.RandomProgram(v, steps, 1<<34, rng.New(1))
	fmt.Printf("QRQW program: v=%d virtual processors, %d steps, QRQW time %d\n\n",
		v, steps, prog.Time())
	fmt.Printf("%-22s %10s %12s %14s %12s\n",
		"machine", "slowdown", "v/p optimal", "work overhead", "d/x floor")

	for _, cfg := range []struct {
		d float64
		x int
	}{
		{d: 4, x: 1}, {d: 16, x: 2}, {d: 16, x: 16}, {d: 16, x: 64}, {d: 64, x: 64},
	} {
		m := core.Machine{
			Name:  fmt.Sprintf("d=%g x=%d", cfg.d, cfg.x),
			Procs: p, Banks: p * cfg.x, D: cfg.d, G: 1, L: 64,
		}
		bm := hashfn.Map{F: hashfn.NewLinear(hashfn.Log2Banks(m.Banks), rng.New(7))}
		res, err := qrqw.Emulate(prog, m, bm, qrqw.Analytic)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %10.0f %12.0f %14.2f %12.2f\n",
			m.Name, res.Slowdown(), float64(v)/float64(p),
			res.WorkOverhead(), qrqw.InevitableWorkOverhead(m))
	}

	fmt.Println("\nRequired slackness for work preservation with overhead alpha=2 (Thm 5.2):")
	for _, d := range []float64{2, 8, 32, 56} {
		m := core.Machine{Name: "q", Procs: p, Banks: p * 64, D: d, G: 1, L: 64}
		s := qrqw.MinSlacknessWorkPreserving(m, 2)
		if math.IsInf(s, 1) {
			fmt.Printf("  d=%-3g x=64: impossible (alpha below d/x)\n", d)
		} else {
			fmt.Printf("  d=%-3g x=64: v/p >= %.0f\n", d, s)
		}
	}
	fmt.Println("\nExpansion compensates for delay; the required slackness is the nonlinear price.")
}
