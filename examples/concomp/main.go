// Connected components with per-phase contention reporting: the paper's
// final algorithm experiment. Random-mate hooking concentrates writes on
// popular roots and shortcutting concentrates reads on the parents of
// large trees; graph structure controls how hot those spots get.
//
// Run with: go run ./examples/concomp
package main

import (
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

func main() {
	const n = 1 << 14
	graphs := []struct {
		name string
		g    *algos.Graph
	}{
		{"path (low hook contention)", algos.PathGraph(n)},
		{"random m=2n", algos.RandomGraph(n, 2*n, rng.New(3))},
		{"star (hub contention)", algos.StarGraph(n)},
	}

	for _, gr := range graphs {
		vm := vector.New(core.J90())
		res := algos.ConnectedComponents(vm, gr.g, rng.New(11))

		// Verify the labeling before reporting timings.
		if !algos.SameComponents(res.Labels, algos.SerialComponents(gr.g)) {
			panic("wrong components for " + gr.name)
		}

		fmt.Printf("%s: %d vertices, %d edges, %d rounds, %.0f cycles total\n",
			gr.name, gr.g.N, gr.g.M(), res.Rounds, vm.Cycles())
		for _, phase := range []string{"hook", "shortcut", "contract"} {
			st := res.Phases[phase]
			fmt.Printf("  %-9s %3d supersteps  %12.0f cycles  max contention %d\n",
				phase, st.Supersteps, st.Cycles, st.MaxContention)
		}
		fmt.Println()
	}
	fmt.Println("The star drives hook contention to ~n immediately; the path hooks stay at 2.")
	fmt.Println("Shortcut contention grows in every graph as components coalesce onto few roots.")
}
