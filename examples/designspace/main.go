// Design-space exploration: cost the same sketched workload on a grid of
// hypothetical machines (bank delay x expansion factor) using the
// declarative program format — the paper's model as a machine-design
// tool. No simulator runs here; the closed-form (d,x)-BSP does the work,
// which is the whole point of having a model.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"strings"

	"dxbsp/internal/core"
	"dxbsp/internal/program"
)

func main() {
	workload := program.Program{
		Name: "irregular-app",
		Seed: 11,
		Supersteps: []program.Superstep{
			{Name: "spread", Pattern: program.PatternSpec{Kind: "permutation", N: 1 << 16}, Repeat: 8},
			{Name: "skewed", Pattern: program.PatternSpec{Kind: "zipf", N: 1 << 16, M: 1 << 16, S: 0.8}, Repeat: 4},
			{Name: "hot", Pattern: program.PatternSpec{Kind: "contention", N: 1 << 16, K: 1 << 11}},
			{Name: "compute", ComputePerProc: 30000},
		},
	}

	delays := []float64{2, 6, 14, 32}
	expansions := []int{4, 16, 64, 256}

	fmt.Println("total (d,x)-BSP megacycles for the workload, by machine design:")
	fmt.Printf("\n%8s", "d \\ x")
	for _, x := range expansions {
		fmt.Printf("%10d", x)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 8+10*len(expansions)))
	for _, d := range delays {
		fmt.Printf("%8g", d)
		for _, x := range expansions {
			m := core.Machine{
				Name: fmt.Sprintf("d%gx%d", d, x), Procs: 8, Banks: 8 * x,
				D: d, G: 1, L: 100,
			}
			rep, err := program.Cost(workload, m, 0, false)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%10.2f", rep.TotalDXBSP/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nReading the grid: moving right (more banks) buys back what moving")
	fmt.Println("down (slower banks) costs — but only until the hot superstep's")
	fmt.Println("location contention, which no amount of expansion can spread.")
}
