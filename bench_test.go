package dxbsp

// This file is the benchmark harness: one testing.B benchmark per table
// and figure of the paper (regenerating the experiment end to end), plus
// the ablation benches DESIGN.md calls out and microbenchmarks of the
// load-bearing primitives. Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure benches report the experiment's headline number as a
// custom metric so regressions in *shape* (not just speed) are visible.

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/patterns"
	"dxbsp/internal/qrqw"
	"dxbsp/internal/rng"
	"dxbsp/internal/runner"
	"dxbsp/internal/sim"
	"dxbsp/internal/sweep"
	"dxbsp/internal/vector"
)

// benchConfig keeps the per-iteration cost of the experiment benches sane
// while staying large enough to show the paper's shapes.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.N = 1 << 14
	return cfg
}

func runExperiment(b *testing.B, id string) {
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.MustRun(cfg).Render(io.Discard)
	}
}

// --- One bench per table -------------------------------------------------

func BenchmarkTableT1(b *testing.B) { runExperiment(b, "T1") }
func BenchmarkTableT2(b *testing.B) { runExperiment(b, "T2") }
func BenchmarkTableT3(b *testing.B) { runExperiment(b, "T3") }

// --- One bench per figure ------------------------------------------------

func BenchmarkFigF1(b *testing.B)  { runExperiment(b, "F1") }
func BenchmarkFigF2(b *testing.B)  { runExperiment(b, "F2") }
func BenchmarkFigF3(b *testing.B)  { runExperiment(b, "F3") }
func BenchmarkFigF4(b *testing.B)  { runExperiment(b, "F4") }
func BenchmarkFigF5(b *testing.B)  { runExperiment(b, "F5") }
func BenchmarkFigF6(b *testing.B)  { runExperiment(b, "F6") }
func BenchmarkFigF7(b *testing.B)  { runExperiment(b, "F7") }
func BenchmarkFigF8(b *testing.B)  { runExperiment(b, "F8") }
func BenchmarkFigF9(b *testing.B)  { runExperiment(b, "F9") }
func BenchmarkFigF10(b *testing.B) { runExperiment(b, "F10") }
func BenchmarkFigF11(b *testing.B) { runExperiment(b, "F11") }
func BenchmarkFigF12(b *testing.B) { runExperiment(b, "F12") }
func BenchmarkFigF13(b *testing.B) { runExperiment(b, "F13") }

// --- Extension experiments (paper's cited refinements and future work) ----

func BenchmarkExtX1CatalogueValidation(b *testing.B) { runExperiment(b, "X1") }
func BenchmarkExtX2CachedBanks(b *testing.B)         { runExperiment(b, "X2") }
func BenchmarkExtX3Multiprefix(b *testing.B)         { runExperiment(b, "X3") }
func BenchmarkExtX4ListRanking(b *testing.B)         { runExperiment(b, "X4") }
func BenchmarkExtX5DXLogP(b *testing.B)              { runExperiment(b, "X5") }
func BenchmarkExtX6MergeCrossover(b *testing.B)      { runExperiment(b, "X6") }
func BenchmarkExtX7Broadcast(b *testing.B)           { runExperiment(b, "X7") }
func BenchmarkExtX8Zipf(b *testing.B)                { runExperiment(b, "X8") }
func BenchmarkExtX9BFS(b *testing.B)                 { runExperiment(b, "X9") }
func BenchmarkExtX10PipelineHash(b *testing.B)       { runExperiment(b, "X10") }
func BenchmarkExtX11TraceReplay(b *testing.B)        { runExperiment(b, "X11") }
func BenchmarkExtX12ErewVsQrqw(b *testing.B)         { runExperiment(b, "X12") }
func BenchmarkExtX13LatencyHiding(b *testing.B)      { runExperiment(b, "X13") }

// --- Ablation benches (DESIGN.md §5) --------------------------------------

// BenchmarkAblationSimVsModel quantifies the gap between the event-driven
// queueing simulation and the closed-form (d,x)-BSP cost on a random
// pattern: the "sim/model" metric should hover near 1.
func BenchmarkAblationSimVsModel(b *testing.B) {
	m := core.J90()
	addrs := patterns.Uniform(1<<14, 1<<30, rng.New(1))
	pt := core.NewPattern(addrs, m.Procs)
	prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
	pred := m.PredictDXBSP(prof)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(sim.Config{Machine: m}, pt)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Cycles / pred
	}
	b.ReportMetric(ratio, "sim/model")
}

// BenchmarkAblationCombining measures what combining at the banks (which
// the paper's machines do not have) would buy on a maximum-contention
// pattern.
func BenchmarkAblationCombining(b *testing.B) {
	m := core.J90()
	pt := core.NewPattern(patterns.AllSame(1<<12, 3), m.Procs)
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain, err := sim.Run(sim.Config{Machine: m}, pt)
		if err != nil {
			b.Fatal(err)
		}
		comb, err := sim.Run(sim.Config{Machine: m, Combining: true}, pt)
		if err != nil {
			b.Fatal(err)
		}
		speedup = plain.Cycles / comb.Cycles
	}
	b.ReportMetric(speedup, "combining-speedup")
}

// BenchmarkAblationOrder measures the effect of injection order: the same
// multiset of addresses issued in sorted (bank-bursty) versus shuffled
// order.
func BenchmarkAblationOrder(b *testing.B) {
	m := core.J90()
	g := rng.New(5)
	sorted := patterns.Strided(1<<14, 0, uint64(m.Banks)/8) // bursts per bank
	shuffled := patterns.Shuffle(sorted, g)
	ptSorted := core.NewPattern(sorted, m.Procs)
	ptShuffled := core.NewPattern(shuffled, m.Procs)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := sim.Run(sim.Config{Machine: m}, ptSorted)
		if err != nil {
			b.Fatal(err)
		}
		rr, err := sim.Run(sim.Config{Machine: m}, ptShuffled)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rs.Cycles / rr.Cycles
	}
	b.ReportMetric(ratio, "sorted/shuffled")
}

// BenchmarkAblationWindow measures closed-loop issue (windowed
// outstanding requests) against the open-loop vector pipeline.
func BenchmarkAblationWindow(b *testing.B) {
	m := core.J90()
	m.L = 50
	pt := core.NewPattern(patterns.Uniform(1<<13, 1<<30, rng.New(9)), m.Procs)
	var slowdown float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		open, err := sim.Run(sim.Config{Machine: m}, pt)
		if err != nil {
			b.Fatal(err)
		}
		win, err := sim.Run(sim.Config{Machine: m, Window: 4}, pt)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = win.Cycles / open.Cycles
	}
	b.ReportMetric(slowdown, "window4/open")
}

// --- Microbenchmarks of the load-bearing primitives -----------------------

func BenchmarkSimScatter64K(b *testing.B) {
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<16, 1<<30, rng.New(2)), m.Procs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Machine: m}, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimScatter64KWindowed exercises the closed-loop path (per-
// request evComplete events), which the open-loop fast path of
// BenchmarkSimScatter64K skips — regressions in either path stay visible.
func BenchmarkSimScatter64KWindowed(b *testing.B) {
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<16, 1<<30, rng.New(2)), m.Procs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Machine: m, Window: 8}, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimScatter64KProbed is BenchmarkSimScatter64K with the
// runner's metrics observer attached, so BENCH_sim.json tracks the
// probes-ON overhead (per-run collector allocation plus one hook call
// per queue event) next to the probes-off baseline, whose allocs/op must
// stay at the no-probe number.
func BenchmarkSimScatter64KProbed(b *testing.B) {
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<16, 1<<30, rng.New(2)), m.Procs)
	obs := runner.NewObserver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Machine: m, Probe: obs}, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimScatter64KSections adds the section servers to the hot
// path, covering the ring buffers on both server kinds.
func BenchmarkSimScatter64KSections(b *testing.B) {
	m := core.J90()
	m.Sections = 8
	m.SectionGap = 0.25
	pt := core.NewPattern(patterns.Uniform(1<<16, 1<<30, rng.New(2)), m.Procs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Machine: m, UseSections: true}, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimScatter64KDRAM runs the same scatter under the DRAM
// discipline with bank groups, covering the row-buffer lookup and the
// group-bus gating on the hot path.
func BenchmarkSimScatter64KDRAM(b *testing.B) {
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<16, 1<<30, rng.New(2)), m.Procs)
	cfg := sim.Config{Machine: m,
		Bank: sim.BankConfig{Discipline: sim.DRAM, Groups: 64, GroupGap: 0.5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimScatter64KRegulated covers the per-bank window accounting
// (epoch rollover, budget checks, deferred starts) at default regulation.
func BenchmarkSimScatter64KRegulated(b *testing.B) {
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<16, 1<<30, rng.New(2)), m.Procs)
	cfg := sim.Config{Machine: m, Bank: sim.BankConfig{Discipline: sim.Regulated}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimScatter64KGPU covers the warp-synchronous issue path, which
// runs closed-loop (per-request completions drive the warp barrier) even
// without a window.
func BenchmarkSimScatter64KGPU(b *testing.B) {
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<16, 1<<30, rng.New(2)), m.Procs)
	cfg := sim.Config{Machine: m, Bank: sim.BankConfig{Discipline: sim.GPUShared}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfile64K(b *testing.B) {
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<16, 1<<30, rng.New(3)), m.Procs)
	bm := core.InterleaveMap{Banks: m.Banks}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeProfileCompact(pt, bm)
	}
}

func BenchmarkHashLinearBulk(b *testing.B)    { benchHashBulk(b, hashfn.NewLinear(9, rng.New(1))) }
func BenchmarkHashQuadraticBulk(b *testing.B) { benchHashBulk(b, hashfn.NewQuadratic(9, rng.New(1))) }
func BenchmarkHashCubicBulk(b *testing.B)     { benchHashBulk(b, hashfn.NewCubic(9, rng.New(1))) }

func benchHashBulk(b *testing.B, f hashfn.Func) {
	xs := make([]uint64, 1<<14)
	g := rng.New(2)
	for i := range xs {
		xs[i] = g.Uint64()
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			sink ^= f.Hash(x)
		}
	}
	_ = sink
}

func BenchmarkRadixSort16K(b *testing.B) {
	g := rng.New(4)
	data := make([]int64, 1<<14)
	for i := range data {
		data[i] = int64(g.Intn(1 << 22))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := vector.New(core.J90())
		v := vm.AllocInit(data)
		algos.RadixSort(vm, v, (1<<22)-1, 11)
	}
}

func BenchmarkQRQWEmulateStep(b *testing.B) {
	m := core.Machine{Name: "emu", Procs: 8, Banks: 512, D: 8, G: 1, L: 64}
	prog := qrqw.RandomProgram(1<<13, 1, 1<<30, rng.New(6))
	bm := hashfn.Map{F: hashfn.NewLinear(9, rng.New(7))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qrqw.Emulate(prog, m, bm, qrqw.Analytic); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeQRQW(b *testing.B) {
	g := rng.New(10)
	mk := func(seed uint64) []int64 {
		gg := rng.New(seed)
		xs := make([]int64, 1<<13)
		for i := range xs {
			xs[i] = int64(gg.Uint64n(1 << 40))
		}
		// insertion-free sort via stdlib-free quick shuffle is overkill;
		// generate sorted directly by prefix sums of small gaps.
		acc := int64(0)
		for i := range xs {
			acc += int64(gg.Intn(1 << 8))
			xs[i] = acc
		}
		return xs
	}
	a, bb := mk(1), mk(2)
	_ = g
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := vector.New(core.J90())
		algos.MergeQRQW(vm, a, bb, 128, rng.New(3))
	}
}

func BenchmarkMultiprefixDirect(b *testing.B) {
	g := rng.New(11)
	n := 1 << 14
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(g.Intn(256))
		vals[i] = int64(g.Intn(8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := vector.New(core.J90())
		algos.MultiprefixDirect(vm, keys, vals, 256)
	}
}

func BenchmarkListRankWyllie(b *testing.B) {
	g := rng.New(12)
	perm := make([]int64, 1<<12)
	for i, v := range g.Perm(len(perm)) {
		perm[i] = int64(v)
	}
	next := algos.MakeList(perm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := vector.New(core.J90())
		algos.ListRankWyllie(vm, next)
	}
}

func BenchmarkBFSRandomGraph(b *testing.B) {
	gr := algos.RandomGraph(1<<12, 1<<14, rng.New(13))
	adj := algos.BuildAdj(gr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := vector.New(core.J90())
		algos.BFS(vm, adj, 0)
	}
}

func BenchmarkSimReferenceCrossCheck(b *testing.B) {
	m := core.Machine{Name: "xv", Procs: 4, Banks: 32, D: 5, G: 1, L: 8}
	pt := core.NewPattern(patterns.Uniform(256, 256, rng.New(14)), m.Procs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunReference(sim.Config{Machine: m}, pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	gr := algos.RandomGraph(1<<12, 1<<13, rng.New(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := vector.New(core.J90())
		algos.ConnectedComponents(vm, gr, rng.New(9))
	}
}

// --- Distributed sweep ----------------------------------------------------

// benchSweepExpansion measures the wall clock of the expansion study (F6)
// executed as a `ways`-way static shard sweep: each shard runs on its own
// single-worker runner with its own journal (the process-per-shard shape,
// compressed into goroutines), then the shard journals merge. 1-way vs
// 4-way is the headline sweep wall-clock entry in BENCH_history.json.
// At quick scale the comparison is skew-bound — F6's largest expansion
// point dominates the wall clock, so 4-way ≈ 1-way; the entry records
// the coordination overhead staying in the noise, and the speedup story
// belongs to paper-scale grids where no single point dominates.
func benchSweepExpansion(b *testing.B, ways int) {
	cfg := benchConfig()
	e, ok := experiments.Lookup("F6")
	if !ok {
		b.Fatal("unknown experiment F6")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		var wg sync.WaitGroup
		for s := 0; s < ways; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				r := &runner.Runner{Parallel: 1, Cache: runner.NewCache()}
				j, err := runner.OpenJournalFile(dir, runner.ShardJournalName(s, ways), false, nil)
				if err != nil {
					b.Error(err)
					return
				}
				defer j.Close()
				r.Cache.Journal = j
				sh := sweep.Shard{Index: s, Count: ways}
				if _, err := r.RunExperiment(context.Background(), sweep.Apply(e, sh), cfg); err != nil {
					b.Error(err)
				}
			}(s)
		}
		wg.Wait()
		if _, err := sweep.Merge(dir, io.Discard); err != nil {
			b.Error(err)
		}
	}
}

func BenchmarkSweepExpansion1Way(b *testing.B) { benchSweepExpansion(b, 1) }
func BenchmarkSweepExpansion4Way(b *testing.B) { benchSweepExpansion(b, 4) }

// --- Batched lockstep engine ----------------------------------------------

// BenchmarkBatchExpansion is the headline number for the batch engine: the
// F6-shaped expansion grid (x × d, all FIFO, so every lane takes the
// lockstep fast path) run as one 16-lane batch per iteration on a held
// engine. The timed region is batch passes only; the scalar engine runs
// the same configs once untimed to report the speedup. Two custom metrics:
// points/sec (batched simulation points per wall-clock second, single
// goroutine — "per core") and xscalar (scalar time per point / batch time
// per point). CI gates xscalar >= 3.
func BenchmarkBatchExpansion(b *testing.B) {
	var cfgs []sim.Config
	for _, x := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		for _, d := range []float64{6, 14} {
			cfgs = append(cfgs, sim.Config{
				Machine: core.Machine{Name: "bench", Procs: 8, Banks: 8 * x, D: d, G: 1, L: 4},
			})
		}
	}
	rg := rng.New(17)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = rg.Uint64n(1 << 30)
	}
	pt := core.NewPattern(addrs, 8)
	ctx := context.Background()

	eng := sim.AcquireBatchEngine()
	defer sim.ReleaseBatchEngine(eng)
	if _, err := eng.Run(ctx, cfgs, pt); err != nil { // warm the arenas
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, cfgs, pt); err != nil {
			b.Fatal(err)
		}
	}
	batchSec := time.Since(start).Seconds()
	b.StopTimer()

	scalarStart := time.Now()
	for _, cfg := range cfgs {
		if _, err := sim.Run(cfg, pt); err != nil {
			b.Fatal(err)
		}
	}
	scalarSec := time.Since(scalarStart).Seconds()

	points := float64(len(cfgs)) * float64(b.N)
	b.ReportMetric(points/batchSec, "points/sec")
	scalarPerPoint := scalarSec / float64(len(cfgs))
	b.ReportMetric(scalarPerPoint/(batchSec/points), "xscalar")
}

// BenchmarkBatchExpansionWindowed is the headline number for windowed
// lockstep batching: the same 16-lane expansion grid as
// BenchmarkBatchExpansion but closed-loop (Window 8, the F2/F3-style
// x-sweep shape), so every lane runs the windowed fast path — lockstep
// until its window fills, then the per-lane replay. Metrics as above;
// CI gates xscalar >= 2 (the replay is per-lane, so the shared-walk
// share of the win is smaller than open loop's).
func BenchmarkBatchExpansionWindowed(b *testing.B) {
	var cfgs []sim.Config
	for _, x := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		for _, d := range []float64{6, 14} {
			cfgs = append(cfgs, sim.Config{
				Machine: core.Machine{Name: "bench", Procs: 8, Banks: 8 * x, D: d, G: 1, L: 4},
				Window:  8,
			})
		}
	}
	rg := rng.New(17)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = rg.Uint64n(1 << 30)
	}
	pt := core.NewPattern(addrs, 8)
	ctx := context.Background()

	eng := sim.AcquireBatchEngine()
	defer sim.ReleaseBatchEngine(eng)
	if _, err := eng.Run(ctx, cfgs, pt); err != nil { // warm the arenas
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, cfgs, pt); err != nil {
			b.Fatal(err)
		}
	}
	batchSec := time.Since(start).Seconds()
	b.StopTimer()

	scalarStart := time.Now()
	for _, cfg := range cfgs {
		if _, err := sim.Run(cfg, pt); err != nil {
			b.Fatal(err)
		}
	}
	scalarSec := time.Since(scalarStart).Seconds()

	points := float64(len(cfgs)) * float64(b.N)
	b.ReportMetric(points/batchSec, "points/sec")
	scalarPerPoint := scalarSec / float64(len(cfgs))
	b.ReportMetric(scalarPerPoint/(batchSec/points), "xscalar")
}

// --- Surrogate-routed huge grid -------------------------------------------

// BenchmarkSurrogateGrid is the headline number for the analytic
// surrogate: the F14 huge grid (p to 4096, x to 64, n = 64p) run end to
// end through the runner with auto routing — exactly the path
// `dxbench -surrogate auto -experiment F14` takes. Small cells still
// event-simulate (exactness is free there); the large rows, whose
// request counts cross DefaultSurrogateThreshold, answer in closed form.
// points/sec counts grid cells per wall-clock second on one worker; a
// fresh runner per iteration keeps the cache from memoizing the work
// away. This entry joins BENCH_history.json but not the regression
// gate: the split between simulated and routed cells is a routing
// policy, not a hot path.
func BenchmarkSurrogateGrid(b *testing.B) {
	e, ok := experiments.Lookup("F14")
	if !ok {
		b.Fatal("unknown experiment F14")
	}
	cfg := experiments.DefaultConfig()
	ctx := context.Background()
	var points float64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		r := &runner.Runner{Parallel: 1, Cache: runner.NewCache(),
			Surrogate: runner.SurrogateRouting{Mode: runner.SurrogateAuto}}
		res, err := r.RunExperiment(ctx, e, cfg)
		if err != nil {
			b.Fatal(err)
		}
		points += float64(res.Stats.Points)
	}
	b.ReportMetric(points/time.Since(start).Seconds(), "points/sec")
}
